//! Sampled per-event span profiler: a latency waterfall across the fixed
//! stages of a serving surface.
//!
//! The aggregate `online.score_latency_us` histogram says *that* scoring
//! got slower, not *where*. This profiler answers "where": a surface (the
//! online detector, phase-3 scoring) declares its fixed stage list up
//! front, and a 1-in-N sampled event carries an [`ActiveWaterfall`] that
//! marks the boundary of each stage as the event flows through the
//! pipeline. Finished waterfalls land in two places:
//!
//! * per-stage **log-scale histograms** in the shared [`Registry`]
//!   (`profile.<surface>.<stage>_ns`, plus `profile.<surface>.total_ns`),
//!   so stage quantiles show up in `/metrics`, snapshots, and the
//!   windowed history ring like any other metric;
//! * a small **ring of recent full waterfalls**, so `GET /profile` and
//!   the CLI can show a concrete per-stage breakdown of real events, not
//!   just marginals.
//!
//! Overhead discipline (the untraced scoring path is ~8 µs p50):
//!
//! * Unsampled events pay one relaxed `fetch_add` and a branch — no
//!   clock read, no allocation.
//! * Sampled events (1-in-N, default 1/64, `DESH_PROFILE_EVERY`-tunable)
//!   pay one `Instant::now` per stage boundary plus the histogram
//!   records.
//! * The waterfall ring is the only shared mutable structure; the write
//!   side uses `try_lock` and *drops the waterfall* on contention
//!   (counted in `ring_dropped`), so the scoring thread never blocks on
//!   an introspection reader.
//!
//! `crates/bench realtime_check --profile-every N` measures the sampled
//! path against the untraced one and CI gates the difference below 3%.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::jsonl::{push_escaped, push_f64};
use crate::metrics::{LatencyHistogram, LatencySnapshot};
use crate::registry::Registry;

/// Default sampling period: one event in 64 carries a waterfall.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Default number of recent full waterfalls retained per surface.
pub const DEFAULT_WATERFALL_RING: usize = 32;

/// Environment variable overriding the sampling period (`1` = every
/// event, `0` is clamped to `1`).
pub const SAMPLE_EVERY_ENV: &str = "DESH_PROFILE_EVERY";

/// Sampling period from [`SAMPLE_EVERY_ENV`], or `default` when unset or
/// unparseable. Zero clamps to 1 (sample everything) rather than
/// disabling, so "set the env var" always yields waterfalls.
pub fn sample_every_from_env(default: u64) -> u64 {
    std::env::var(SAMPLE_EVERY_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
        .max(1)
}

/// One completed sampled waterfall: the per-stage nanosecond breakdown of
/// a single event's trip through the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Waterfall {
    /// Index among sampled events (0 = first sample taken).
    pub seq: u64,
    /// Event timestamp (stream time, µs) when the surface provided one.
    pub at_us: u64,
    /// Wall time from `begin` to `finish`, nanoseconds.
    pub total_ns: u64,
    /// Per-stage nanoseconds, indexed like the profiler's stage list.
    /// Stages the event never reached hold 0 and are absent from the
    /// marked set.
    pub stage_ns: Vec<u64>,
    /// Bitmask of stages that were actually marked.
    pub marked: u32,
}

impl Waterfall {
    /// Whether stage `i` was marked on this waterfall.
    pub fn is_marked(&self, i: usize) -> bool {
        self.marked & (1 << i) != 0
    }
}

/// In-flight waterfall for one sampled event. Created by
/// [`SpanProfiler::begin`], carried down the pipeline by value, and
/// returned to [`SpanProfiler::finish`] (or dropped to discard the
/// sample, e.g. for events filtered out before the serving path proper).
#[derive(Debug)]
pub struct ActiveWaterfall {
    begun: Instant,
    last: Instant,
    at_us: u64,
    stage_ns: Vec<u64>,
    marked: u32,
}

impl ActiveWaterfall {
    /// Close the current stage: attribute the time since the previous
    /// mark (or since `begin`) to stage `stage`. Marking the same stage
    /// twice accumulates.
    pub fn mark(&mut self, stage: usize) {
        let now = Instant::now();
        if let Some(slot) = self.stage_ns.get_mut(stage) {
            *slot += saturating_ns(now.duration_since(self.last));
            self.marked |= 1 << stage;
        }
        self.last = now;
    }

    /// Attach the event's stream timestamp (µs) for display in the ring.
    pub fn set_at_us(&mut self, at_us: u64) {
        self.at_us = at_us;
    }

    /// Whether stage `stage` has been marked so far.
    pub fn is_marked(&self, stage: usize) -> bool {
        self.marked & (1 << stage) != 0
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Sampled per-event span profiler for one serving surface. Construct
/// once per surface via [`SpanProfiler::new`] and share the `Arc` with
/// the instrumented code and the introspection server.
#[derive(Debug)]
pub struct SpanProfiler {
    surface: String,
    stages: Vec<String>,
    every: u64,
    /// `every - 1` when `every` is a power of two, letting [`Self::begin`]
    /// replace the integer division behind `%` with a mask — the division
    /// is a measurable share of the per-event cost at the default 1-in-64
    /// rate on the unsampled fast path.
    mask: Option<u64>,
    seen: AtomicU64,
    sampled: AtomicU64,
    ring_dropped: AtomicU64,
    /// Per-stage nanosecond histograms, resolved once at construction.
    hists: Vec<Arc<LatencyHistogram>>,
    total: Arc<LatencyHistogram>,
    ring_cap: usize,
    ring: Mutex<VecDeque<Waterfall>>,
}

impl SpanProfiler {
    /// Profiler for `surface` with the given ordered stage list (at most
    /// 32 stages), sampling one event in `every` (clamped to ≥1) and
    /// retaining `ring_cap` recent waterfalls. Stage histograms are
    /// registered as `profile.<surface>.<stage>_ns` in `registry`.
    pub fn new(
        registry: &Arc<Registry>,
        surface: &str,
        stages: &[&str],
        every: u64,
        ring_cap: usize,
    ) -> Arc<Self> {
        assert!(stages.len() <= 32, "at most 32 stages per surface");
        let hists = stages
            .iter()
            .map(|s| registry.histogram(&format!("profile.{surface}.{s}_ns")))
            .collect();
        let every = every.max(1);
        Arc::new(Self {
            surface: surface.to_string(),
            stages: stages.iter().map(|s| s.to_string()).collect(),
            every,
            mask: every.is_power_of_two().then(|| every - 1),
            seen: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            ring_dropped: AtomicU64::new(0),
            hists,
            total: registry.histogram(&format!("profile.{surface}.total_ns")),
            ring_cap: ring_cap.max(1),
            ring: Mutex::new(VecDeque::with_capacity(ring_cap.max(1))),
        })
    }

    /// Count one event and decide whether to sample it. `None` (the
    /// 1-in-N common case) costs one relaxed `fetch_add` and a branch.
    pub fn begin(&self) -> Option<ActiveWaterfall> {
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        let miss = match self.mask {
            Some(m) => n & m != 0,
            None => !n.is_multiple_of(self.every),
        };
        if miss {
            return None;
        }
        let now = Instant::now();
        Some(ActiveWaterfall {
            begun: now,
            last: now,
            at_us: 0,
            stage_ns: vec![0; self.stages.len()],
            marked: 0,
        })
    }

    /// Record a finished waterfall: marked stages land in their
    /// histograms, the total in `profile.<surface>.total_ns`, and — when
    /// the waterfall is "full" (`ring_stage` was marked, i.e. the event
    /// reached the surface's core stage) — the breakdown joins the ring
    /// of recent waterfalls. `ring_stage` of `None` admits every
    /// waterfall.
    pub fn finish(&self, wf: ActiveWaterfall, ring_stage: Option<usize>) {
        let total_ns = saturating_ns(wf.begun.elapsed());
        let seq = self.sampled.fetch_add(1, Ordering::Relaxed);
        for (i, (&ns, h)) in wf.stage_ns.iter().zip(&self.hists).enumerate() {
            if wf.marked & (1 << i) != 0 {
                h.record(ns);
            }
        }
        self.total.record(total_ns);
        let full = ring_stage.is_none_or(|s| wf.marked & (1 << s) != 0);
        if !full {
            return;
        }
        let done = Waterfall {
            seq,
            at_us: wf.at_us,
            total_ns,
            stage_ns: wf.stage_ns,
            marked: wf.marked,
        };
        // Never block the scoring thread on an introspection reader: on
        // contention the sample is dropped and counted, not queued.
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() == self.ring_cap {
                    ring.pop_front();
                }
                ring.push_back(done);
            }
            Err(_) => {
                self.ring_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Surface name.
    pub fn surface(&self) -> &str {
        &self.surface
    }

    /// Ordered stage names.
    pub fn stage_names(&self) -> &[String] {
        &self.stages
    }

    /// Sampling period (1-in-N).
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Events seen (sampled or not).
    pub fn events_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Waterfalls recorded (including ring-dropped ones).
    pub fn sampled(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Waterfalls dropped from the ring due to reader contention.
    pub fn ring_dropped(&self) -> u64 {
        self.ring_dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained waterfalls, oldest first.
    pub fn waterfalls(&self) -> Vec<Waterfall> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Per-stage histogram snapshots, in stage order, plus the total.
    pub fn stage_snapshots(&self) -> Vec<(String, LatencySnapshot)> {
        let mut out: Vec<(String, LatencySnapshot)> = self
            .stages
            .iter()
            .zip(&self.hists)
            .map(|(s, h)| (s.clone(), h.snapshot()))
            .collect();
        out.push(("total".to_string(), self.total.snapshot()));
        out
    }
}

/// Render one or more surfaces' profiles as the `GET /profile` JSON body:
/// per-stage p50/p95/p99 (nanoseconds) plus the recent full waterfalls.
pub fn render_profile_json(profilers: &[Arc<SpanProfiler>]) -> String {
    let mut s = String::from("{\"surfaces\":[");
    for (pi, p) in profilers.iter().enumerate() {
        if pi > 0 {
            s.push(',');
        }
        s.push_str("{\"surface\":");
        push_escaped(&mut s, p.surface());
        s.push_str(&format!(
            ",\"sample_every\":{},\"events_seen\":{},\"sampled\":{},\"ring_dropped\":{}",
            p.every(),
            p.events_seen(),
            p.sampled(),
            p.ring_dropped()
        ));
        s.push_str(",\"stages\":[");
        for (i, (name, snap)) in p.stage_snapshots().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"stage\":");
            push_escaped(&mut s, name);
            s.push_str(&format!(",\"count\":{},\"p50_ns\":", snap.count()));
            push_f64(&mut s, snap.quantile(0.5));
            s.push_str(",\"p95_ns\":");
            push_f64(&mut s, snap.quantile(0.95));
            s.push_str(",\"p99_ns\":");
            push_f64(&mut s, snap.quantile(0.99));
            s.push_str(&format!(",\"max_ns\":{}}}", snap.max()));
        }
        s.push_str("],\"waterfalls\":[");
        for (i, w) in p.waterfalls().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"seq\":{},\"at_us\":{},\"total_ns\":{},\"stages\":{{",
                w.seq, w.at_us, w.total_ns
            ));
            let mut first = true;
            for (si, name) in p.stage_names().iter().enumerate() {
                if !w.is_marked(si) {
                    continue;
                }
                if !first {
                    s.push(',');
                }
                first = false;
                push_escaped(&mut s, name);
                s.push_str(&format!(":{}", w.stage_ns[si]));
            }
            s.push_str("}}");
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

/// Render one surface's profile as a human-readable table plus an ASCII
/// waterfall of the latest retained sample (the `desh-cli predict
/// --profile` output).
pub fn render_profile_ascii(p: &SpanProfiler) -> String {
    let mut out = format!(
        "profile {} (1/{} sampling, {} of {} events sampled)\n",
        p.surface(),
        p.every(),
        p.sampled(),
        p.events_seen()
    );
    let snaps = p.stage_snapshots();
    let total_p50 = snaps
        .last()
        .map(|(_, s)| s.quantile(0.5))
        .unwrap_or(0.0)
        .max(1.0);
    out.push_str(&format!(
        "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>7}\n",
        "stage", "count", "p50", "p95", "p99", "share"
    ));
    for (name, snap) in &snaps {
        let p50 = snap.quantile(0.5);
        let share = if name == "total" {
            String::new()
        } else {
            format!("{:>6.1}%", p50 / total_p50 * 100.0)
        };
        out.push_str(&format!(
            "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>7}\n",
            name,
            snap.count(),
            fmt_ns(p50),
            fmt_ns(snap.quantile(0.95)),
            fmt_ns(snap.quantile(0.99)),
            share
        ));
    }
    if let Some(w) = p.waterfalls().last() {
        out.push_str(&format!(
            "  waterfall (sample #{}, total {}):\n",
            w.seq,
            fmt_ns(w.total_ns as f64)
        ));
        let max_ns = w.stage_ns.iter().copied().max().unwrap_or(1).max(1);
        for (si, name) in p.stage_names().iter().enumerate() {
            if !w.is_marked(si) {
                continue;
            }
            let ns = w.stage_ns[si];
            let width = ((ns as f64 / max_ns as f64) * 30.0).round() as usize;
            out.push_str(&format!(
                "    {:<12} |{:<30}| {}\n",
                name,
                "#".repeat(width.max(usize::from(ns > 0))),
                fmt_ns(ns as f64)
            ));
        }
    }
    out
}

/// Human-friendly nanosecond figure (`850ns`, `12.3us`, `4.56ms`).
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else {
        format!("{:.2}ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler(every: u64, cap: usize) -> (Arc<Registry>, Arc<SpanProfiler>) {
        let reg = Arc::new(Registry::new());
        let p = SpanProfiler::new(&reg, "online", &["parse", "step", "warn"], every, cap);
        (reg, p)
    }

    #[test]
    fn samples_one_in_n() {
        let (_, p) = profiler(4, 8);
        let mut sampled = 0;
        for _ in 0..16 {
            if let Some(wf) = p.begin() {
                sampled += 1;
                p.finish(wf, None);
            }
        }
        assert_eq!(sampled, 4);
        assert_eq!(p.events_seen(), 16);
        assert_eq!(p.sampled(), 4);
    }

    #[test]
    fn marks_attribute_time_to_stages_in_order() {
        let (reg, p) = profiler(1, 8);
        let mut wf = p.begin().unwrap();
        wf.mark(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        wf.mark(1);
        wf.set_at_us(42);
        p.finish(wf, Some(1));
        let w = &p.waterfalls()[0];
        assert_eq!(w.at_us, 42);
        assert!(w.is_marked(0) && w.is_marked(1) && !w.is_marked(2));
        assert!(
            w.stage_ns[1] >= 1_000_000,
            "slept 2ms, got {}ns",
            w.stage_ns[1]
        );
        assert!(w.total_ns >= w.stage_ns[0] + w.stage_ns[1]);
        // Histograms registered under profile.<surface>.<stage>_ns.
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("profile.online.parse_ns").unwrap().count(),
            1
        );
        assert_eq!(snap.histogram("profile.online.step_ns").unwrap().count(), 1);
        assert_eq!(snap.histogram("profile.online.warn_ns").unwrap().count(), 0);
        assert_eq!(
            snap.histogram("profile.online.total_ns").unwrap().count(),
            1
        );
    }

    #[test]
    fn partial_waterfalls_stay_out_of_the_ring() {
        let (_, p) = profiler(1, 8);
        let mut wf = p.begin().unwrap();
        wf.mark(0); // parse only; never reached the core stage
        p.finish(wf, Some(1));
        assert_eq!(p.sampled(), 1);
        assert!(p.waterfalls().is_empty(), "partial waterfall entered ring");
        // Its marked stages still feed the histograms.
        let mut wf = p.begin().unwrap();
        wf.mark(0);
        wf.mark(1);
        p.finish(wf, Some(1));
        assert_eq!(p.waterfalls().len(), 1);
    }

    #[test]
    fn ring_retains_newest_waterfalls() {
        let (_, p) = profiler(1, 4);
        for _ in 0..10 {
            let mut wf = p.begin().unwrap();
            wf.mark(0);
            p.finish(wf, None);
        }
        let ring = p.waterfalls();
        assert_eq!(ring.len(), 4);
        assert_eq!(
            ring.iter().map(|w| w.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "ring keeps the newest samples, oldest first"
        );
    }

    #[test]
    fn repeated_marks_accumulate() {
        let (_, p) = profiler(1, 4);
        let mut wf = p.begin().unwrap();
        wf.mark(1);
        wf.mark(1);
        p.finish(wf, None);
        assert_eq!(p.waterfalls().len(), 1);
    }

    #[test]
    fn renderers_cover_stages_and_waterfalls() {
        let (_, p) = profiler(1, 4);
        for _ in 0..3 {
            let mut wf = p.begin().unwrap();
            wf.mark(0);
            wf.mark(1);
            wf.mark(2);
            p.finish(wf, Some(1));
        }
        let json = render_profile_json(&[Arc::clone(&p)]);
        assert!(json.contains("\"surface\":\"online\""));
        assert!(json.contains("\"stage\":\"step\""));
        assert!(json.contains("\"p99_ns\":"));
        assert!(json.contains("\"waterfalls\":[{"));
        assert!(json.contains("\"sample_every\":1"));
        let ascii = render_profile_ascii(&p);
        assert!(ascii.contains("profile online"));
        assert!(ascii.contains("waterfall (sample #"));
        assert!(ascii.contains("step"));
    }

    #[test]
    fn env_override_parses_and_clamps() {
        assert_eq!(sample_every_from_env(64), 64);
        std::env::set_var(SAMPLE_EVERY_ENV, "8");
        assert_eq!(sample_every_from_env(64), 8);
        std::env::set_var(SAMPLE_EVERY_ENV, "0");
        assert_eq!(
            sample_every_from_env(64),
            1,
            "0 clamps to sample-everything"
        );
        std::env::set_var(SAMPLE_EVERY_ENV, "nonsense");
        assert_eq!(sample_every_from_env(64), 64);
        std::env::remove_var(SAMPLE_EVERY_ENV);
    }
}
