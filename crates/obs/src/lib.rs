//! Telemetry for the Desh pipeline.
//!
//! The paper's operational claims — per-event scoring in ~0.65 ms (Fig 10),
//! phase-level training cost, template-miss rates during parsing — are all
//! *measurements*, so reproducing them honestly needs a measurement layer
//! rather than ad-hoc `Instant::now()` calls scattered through binaries.
//!
//! This crate provides that layer with no external dependencies:
//!
//! - [`Registry`]: a thread-safe, name-keyed registry of [`Counter`]s,
//!   [`Gauge`]s, and log-scale [`LatencyHistogram`]s. All metric types are
//!   lock-free atomics once resolved; resolution (`registry.histogram("x")`)
//!   takes a lock and allocates, so hot paths resolve once and hold the
//!   `Arc` handle.
//! - [`Telemetry`]: the handle threaded through the pipeline. It is a
//!   cheap-clone `Option<Arc<Registry>>`; the disabled default makes every
//!   operation a no-op without branching deep into callee code, so
//!   instrumented library code costs nothing when nobody is listening.
//! - [`Span`] / [`Telemetry::span`]: scope-based wall-time measurement with
//!   thread-local nesting, recording into `span.<dotted.path>_us`
//!   histograms.
//! - Sinks: [`JsonlSink`] appends machine-readable event/snapshot lines,
//!   [`render_prometheus`] emits Prometheus text exposition, and
//!   [`render_summary`] prints a human-readable table (reusing
//!   [`desh_util::Histogram`] for distribution bars).
//!
//! Metric names are dotted lowercase (`online.score_latency_us`); the
//! Prometheus renderer maps dots to underscores.

mod jsonl;
mod metrics;
mod prom;
mod registry;
mod snapshot;
mod span;

pub use jsonl::{JsonValue, JsonlSink};
pub use metrics::{Counter, Gauge, LatencyHistogram, LatencySnapshot};
pub use prom::{render_prometheus, render_summary};
pub use registry::{Registry, Telemetry};
pub use snapshot::Snapshot;
pub use span::Span;
