//! Telemetry for the Desh pipeline.
//!
//! The paper's operational claims — per-event scoring in ~0.65 ms (Fig 10),
//! phase-level training cost, template-miss rates during parsing — are all
//! *measurements*, so reproducing them honestly needs a measurement layer
//! rather than ad-hoc `Instant::now()` calls scattered through binaries.
//!
//! This crate provides that layer with no external dependencies:
//!
//! - [`Registry`]: a thread-safe, name-keyed registry of [`Counter`]s,
//!   [`Gauge`]s, and log-scale [`LatencyHistogram`]s. All metric types are
//!   lock-free atomics once resolved; resolution (`registry.histogram("x")`)
//!   takes a lock and allocates, so hot paths resolve once and hold the
//!   `Arc` handle.
//! - [`Telemetry`]: the handle threaded through the pipeline. It is a
//!   cheap-clone `Option<Arc<Registry>>`; the disabled default makes every
//!   operation a no-op without branching deep into callee code, so
//!   instrumented library code costs nothing when nobody is listening.
//! - [`Span`] / [`Telemetry::span`]: scope-based wall-time measurement with
//!   thread-local nesting, recording into `span.<dotted.path>_us`
//!   histograms.
//! - Sinks: [`JsonlSink`] appends machine-readable event/snapshot lines,
//!   [`render_prometheus`] emits Prometheus text exposition, and
//!   [`render_summary`] prints a human-readable table (reusing
//!   [`desh_util::Histogram`] for distribution bars).
//!
//! Metric names are dotted lowercase (`online.score_latency_us`); the
//! Prometheus renderer maps dots to underscores. A `base[k=v,...]` name
//! suffix becomes Prometheus labels (`desh_base{k="v"}`), with label
//! values escaped per the text exposition format.
//!
//! On top of the metric layer sits the decision-tracing stack
//! (`desh-trace`):
//!
//! - [`TraceEvent`] / [`WarningRecord`] / [`WarningLog`] (`trace`): one
//!   wide event per scored log line and the evidence bundle shipped with
//!   each fired warning.
//! - [`FlightRecorder`] / [`NodeFlight`] (`flight`): lock-free per-node
//!   seqlock rings holding the last ~[`FLIGHT_CAPACITY`] decisions, plus
//!   [`install_panic_dump`] for post-mortem JSONL dumps.
//! - [`HttpServer`] / [`Introspection`] (`http`): a dependency-free
//!   blocking server exposing `/metrics`, `/healthz`, `/warnings`,
//!   `/nodes/<id>/flight`, and — when a runs directory is attached —
//!   `/runs` and `/runs/<id>/series`.
//! - [`QualityMonitor`] (`quality`): rolling confusion matrix, per-class
//!   lead-time tracking against the paper's Table 7, and a template-miss
//!   drift gauge.
//! - [`CaptureTap`] / [`CapsuleRecorder`] (`capsule`): sealed, checksummed
//!   `.dcap` incident captures — raw pre-trigger event rings, live decision
//!   trace words, checkpoint/backend/precision provenance — written on
//!   warning fire, SLO fast-burn, or panic, and replayed bit-exactly by
//!   `desh-core`'s replay engine.
//!
//! The serving-path observability layer (`profiler` + `history` + `slo`)
//! watches the predictor itself:
//!
//! - [`SpanProfiler`] (`profiler`): 1-in-N sampled per-event latency
//!   waterfalls across the fixed pipeline stages (parse → template →
//!   encode → cell-step → threshold → warn), feeding
//!   `profile.<surface>.<stage>_ns` histograms and a ring of recent full
//!   waterfalls served at `GET /profile`.
//! - [`MetricsHistory`] / [`HistorySampler`] (`history`): a ~15-minute
//!   ring of 1 Hz registry snapshots behind `GET /metrics/history`, so
//!   rate/p99-over-time queries work without an external scraper.
//! - [`SloEngine`] (`slo`): declarative SLOs with SRE-style multi-window
//!   burn-rate alerting over that ring, served at `GET /slo`; fast burn
//!   degrades `/healthz` to 503 and appends `slo_alert` JSONL records.
//!
//! The shadow-scoring layer (`shadow`) compares a candidate checkpoint
//! against the serving primary on the same live stream: [`ShadowMonitor`]
//! keeps warning agreement/confusion counters, per-class lead-time delta
//! histograms, and a score-divergence EWMA; [`ShadowLedger`] seals the
//! run as an auditable JSONL trail with both checkpoints' identities
//! pinned; and [`evaluate_gates`] turns the summary into a PASS/FAIL
//! promotion verdict against [`ShadowThresholds`], served at
//! `GET /shadow` and `GET /shadow/report` and rendered by
//! `desh-cli shadow report`.
//!
//! The training run ledger (`runs` + `timeseries` + `json`) persists one
//! directory per training run — manifest, append-only per-epoch series
//! with per-layer gradient stats, divergence dumps, and a final
//! `run.json` — and reads them back for `desh-cli runs list|show|diff`.

mod capsule;
mod flight;
mod history;
mod http;
mod json;
mod jsonl;
mod metrics;
mod profiler;
mod prom;
mod quality;
mod registry;
mod runs;
mod shadow;
mod slo;
mod snapshot;
mod span;
mod timeseries;
mod trace;

pub use capsule::{
    list_capsules, render_capsules_json, Capsule, CapsuleContext, CapsuleEvent, CapsuleMeta,
    CapsuleRecorder, CapsuleSummary, CaptureTap, NodeCapture, CAPSULE_MAGIC, CAPSULE_VERSION,
    CAPTURE_MAX_FILES, CAPTURE_RING, CAPTURE_WARNINGS,
};
pub use flight::{
    install_panic_dump, panic_dump_jsonl, panic_dump_path, FlightRecorder, NodeFlight,
    FLIGHT_CAPACITY,
};
pub use history::{
    HistorySampler, MetricsHistory, DEFAULT_CAPACITY as HISTORY_CAPACITY,
    DEFAULT_RESOLUTION_MS as HISTORY_RESOLUTION_MS,
};
pub use http::{HealthInfo, HttpServer, Introspection};
pub use json::{parse_json, Json};
pub use jsonl::{JsonValue, JsonlSink};
pub use metrics::{Counter, Gauge, LatencyHistogram, LatencySnapshot};
pub use profiler::{
    render_profile_ascii, render_profile_json, sample_every_from_env, ActiveWaterfall,
    SpanProfiler, Waterfall, DEFAULT_SAMPLE_EVERY, DEFAULT_WATERFALL_RING, SAMPLE_EVERY_ENV,
};
pub use prom::{render_prometheus, render_summary};
pub use quality::QualityMonitor;
pub use registry::{Registry, Telemetry};
pub use runs::{
    fnv1a, list_runs, load_run, load_series, now_unix_ms, render_runs_json, DivergenceRecord,
    PhaseSummary, RunLedger, RunManifest, RunSummary,
};
pub use shadow::{
    evaluate_gates, load_shadow_ledger, render_shadow_report_json, render_shadow_report_table,
    GateResult, ObservedWarning, ShadowIdentity, ShadowLedger, ShadowLedgerDoc, ShadowMonitor,
    ShadowReport, ShadowSideSummary, ShadowSummary, ShadowThresholds, DEFAULT_SHADOW_SLACK_SECS,
};
pub use slo::{
    default_specs as default_slo_specs, AlertRecord, BurnPolicy, SloEngine, SloReport, SloSignal,
    SloSpec, SloStatus, WindowBurn,
};
pub use snapshot::Snapshot;
pub use span::Span;
pub use timeseries::{
    diff_series, parse_series, render_series_diff, EpochDiff, EpochRecord, LayerStat,
};
pub use trace::{TraceEvent, WarningLog, WarningRecord, DEFAULT_WARNINGS_LIMIT, TRACE_WORDS};
