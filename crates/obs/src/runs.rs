//! The training run ledger: one directory per run, holding everything
//! needed to audit or compare training runs after the process is gone.
//!
//! Layout under a runs root (the CLI's `--run-dir`):
//!
//! ```text
//! <root>/<run_id>/
//!   manifest.json     # config snapshot, seed, shards/threads, dataset
//!   series.jsonl      # append-only per-epoch EpochRecord lines
//!   run.json          # written once at the end: status, phases, metrics
//!   divergence.json   # only on watchdog abort: offending epoch + reason
//!   last-good-<phase>.ckpt  # only on abort: weights of the last healthy epoch
//! ```
//!
//! `series.jsonl` is flushed after every line, so a crashed or killed run
//! leaves at most one partial trailing line (which
//! [`crate::timeseries::parse_series`] drops). `run.json` existing means
//! the run finished — `status` says how.

use crate::json::{parse_json, Json};
use crate::jsonl::{push_escaped, push_f64};
use crate::timeseries::{parse_series, EpochRecord};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Milliseconds since the Unix epoch (run-id construction, manifest).
pub fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// FNV-1a over arbitrary bytes — the ledger's cheap content fingerprint
/// (config hashes, dataset fingerprints). Stable across processes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Immutable facts about a run, captured at creation time.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Unique id; also the directory name.
    pub run_id: String,
    /// Wall-clock creation time, ms since Unix epoch.
    pub created_unix_ms: u64,
    /// Training seed.
    pub seed: u64,
    /// Fixed gradient shard count in effect (`DESH_SHARDS`).
    pub shards: u64,
    /// `DESH_THREADS` value, or `"default"` when unset.
    pub threads: String,
    /// Dataset fingerprint (caller-defined; the pipeline hashes record
    /// count + time span + text sample).
    pub dataset: String,
    /// FNV-1a hash of the full config debug representation — the same
    /// hash stamped into v3 checkpoints, linking them to this ledger.
    pub config_hash: u64,
    /// Human-readable key config fields, as (key, value) pairs.
    pub config: Vec<(String, String)>,
}

impl RunManifest {
    fn to_json(&self) -> String {
        let mut s = String::from("{\"run_id\":");
        push_escaped(&mut s, &self.run_id);
        s.push_str(&format!(
            ",\"created_unix_ms\":{},\"seed\":{},\"shards\":{},\"threads\":",
            self.created_unix_ms, self.seed, self.shards
        ));
        push_escaped(&mut s, &self.threads);
        s.push_str(",\"dataset\":");
        push_escaped(&mut s, &self.dataset);
        // Hex string, not a JSON number: the hash uses the full u64 range
        // and would lose its low bits round-tripping through f64 parsers.
        s.push_str(&format!(
            ",\"config_hash\":\"{:016x}\",\"config\":{{",
            self.config_hash
        ));
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_escaped(&mut s, k);
            s.push(':');
            push_escaped(&mut s, v);
        }
        s.push_str("}}");
        s
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing {key}"))
        };
        let u64_field = |key: &str| -> u64 { v.get(key).and_then(Json::as_u64).unwrap_or(0) };
        // Written as a 16-digit hex string (see to_json); tolerate the
        // numeric form from pre-hex manifests even though it may have
        // lost low bits to f64.
        let config_hash = match v.get("config_hash") {
            Some(Json::Str(s)) => u64::from_str_radix(s, 16).unwrap_or(0),
            _ => u64_field("config_hash"),
        };
        let mut config = Vec::new();
        if let Some(m) = v.get("config").and_then(Json::as_obj) {
            for (k, val) in m {
                config.push((k.clone(), val.as_str().unwrap_or_default().to_string()));
            }
        }
        Ok(Self {
            run_id: str_field("run_id")?,
            created_unix_ms: u64_field("created_unix_ms"),
            seed: u64_field("seed"),
            shards: u64_field("shards"),
            threads: str_field("threads").unwrap_or_else(|_| "default".into()),
            dataset: str_field("dataset").unwrap_or_default(),
            config_hash,
            config,
        })
    }
}

/// Why and where a run was aborted by the divergence watchdog.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceRecord {
    /// Phase that tripped (`sgns`/`phase1`/`phase2`).
    pub phase: String,
    /// Zero-based epoch within the phase.
    pub epoch: u64,
    /// Machine-readable reason kind (`nan_loss`, `exploding_grad`,
    /// `nonfinite_grads`).
    pub reason: String,
    /// Human-readable detail (the offending value / layer).
    pub detail: String,
    /// File name of the last-good checkpoint inside the run dir, when
    /// one healthy epoch existed before the trip.
    pub last_good_checkpoint: Option<String>,
}

impl DivergenceRecord {
    fn to_json(&self) -> String {
        let mut s = String::from("{\"phase\":");
        push_escaped(&mut s, &self.phase);
        s.push_str(&format!(",\"epoch\":{},\"reason\":", self.epoch));
        push_escaped(&mut s, &self.reason);
        s.push_str(",\"detail\":");
        push_escaped(&mut s, &self.detail);
        s.push_str(",\"last_good_checkpoint\":");
        match &self.last_good_checkpoint {
            Some(p) => push_escaped(&mut s, p),
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }

    fn from_json(v: &Json) -> Option<Self> {
        Some(Self {
            phase: v.get("phase")?.as_str()?.to_string(),
            epoch: v.get("epoch").and_then(Json::as_u64).unwrap_or(0),
            reason: v.get("reason")?.as_str()?.to_string(),
            detail: v
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            last_good_checkpoint: v
                .get("last_good_checkpoint")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

/// End-of-phase accounting kept in `run.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// Phase name.
    pub name: String,
    /// Epochs completed.
    pub epochs: u64,
    /// Phase wall time, microseconds.
    pub wall_us: u64,
    /// Mean loss of the final completed epoch.
    pub final_loss: f64,
}

/// A live, writable run ledger. Create one per training run; feed it
/// epochs and phase boundaries; call [`RunLedger::finish`] exactly once.
#[derive(Debug)]
pub struct RunLedger {
    dir: PathBuf,
    manifest: RunManifest,
    series: File,
    phases: Vec<PhaseSummary>,
    checkpoint: Option<String>,
}

impl RunLedger {
    /// Create `<root>/<run_id>/` with `manifest.json` and an empty
    /// `series.jsonl`. Fails if the run directory already exists.
    pub fn create(root: &Path, manifest: RunManifest) -> io::Result<Self> {
        let dir = root.join(&manifest.run_id);
        fs::create_dir_all(root)?;
        fs::create_dir(&dir)?;
        fs::write(dir.join("manifest.json"), manifest.to_json())?;
        let series = File::create(dir.join("series.jsonl"))?;
        Ok(Self {
            dir,
            manifest,
            series,
            phases: Vec::new(),
            checkpoint: None,
        })
    }

    /// The run's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The run id.
    pub fn run_id(&self) -> &str {
        &self.manifest.run_id
    }

    /// The manifest captured at creation.
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// Append one epoch line and flush it, so a later crash cannot lose
    /// it.
    pub fn append_epoch(&mut self, rec: &EpochRecord) -> io::Result<()> {
        let mut line = rec.to_json_line();
        line.push('\n');
        self.series.write_all(line.as_bytes())?;
        self.series.flush()
    }

    /// Record a completed (or aborted) phase's summary for `run.json`.
    pub fn end_phase(&mut self, name: &str, epochs: u64, wall_us: u64, final_loss: f64) {
        self.phases.push(PhaseSummary {
            name: name.to_string(),
            epochs,
            wall_us,
            final_loss,
        });
    }

    /// Dump the offending epoch's full stats to `divergence.json`.
    pub fn write_divergence(
        &self,
        record: &DivergenceRecord,
        offending_epoch: &EpochRecord,
    ) -> io::Result<()> {
        let body = format!(
            "{{\"divergence\":{},\"offending_epoch\":{}}}",
            record.to_json(),
            offending_epoch.to_json_line()
        );
        fs::write(self.dir.join("divergence.json"), body)
    }

    /// Save opaque checkpoint bytes under the run dir; returns the file
    /// name (not path) for cross-referencing from `run.json`.
    pub fn save_checkpoint(&self, name: &str, bytes: &[u8]) -> io::Result<String> {
        fs::write(self.dir.join(name), bytes)?;
        Ok(name.to_string())
    }

    /// Record the path of the exported model checkpoint (the CLI's
    /// `--out` file, stamped with this run's id and config hash) so
    /// `runs show` can link checkpoint and ledger both ways.
    pub fn note_checkpoint(&mut self, path: &str) {
        self.checkpoint = Some(path.to_string());
    }

    /// Write `run.json` and consume the ledger. `divergence` set means
    /// status `"diverged"`, else `"completed"`. `end_metrics` are final
    /// pipeline numbers — by convention including `paper.*` keys for the
    /// paper's Table 6/7 reference figures next to the measured values.
    pub fn finish(
        self,
        divergence: Option<&DivergenceRecord>,
        end_metrics: &[(String, f64)],
    ) -> io::Result<()> {
        let mut s = String::from("{\"run_id\":");
        push_escaped(&mut s, &self.manifest.run_id);
        s.push_str(",\"status\":");
        push_escaped(
            &mut s,
            if divergence.is_some() {
                "diverged"
            } else {
                "completed"
            },
        );
        s.push_str(",\"manifest\":");
        s.push_str(&self.manifest.to_json());
        s.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            push_escaped(&mut s, &p.name);
            s.push_str(&format!(
                ",\"epochs\":{},\"wall_us\":{},\"final_loss\":",
                p.epochs, p.wall_us
            ));
            push_f64(&mut s, p.final_loss);
            s.push('}');
        }
        s.push_str("],\"divergence\":");
        match divergence {
            Some(d) => s.push_str(&d.to_json()),
            None => s.push_str("null"),
        }
        s.push_str(",\"checkpoint\":");
        match &self.checkpoint {
            Some(p) => push_escaped(&mut s, p),
            None => s.push_str("null"),
        }
        s.push_str(",\"end_metrics\":{");
        for (i, (k, v)) in end_metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_escaped(&mut s, k);
            s.push(':');
            push_f64(&mut s, *v);
        }
        s.push_str("}}");
        fs::write(self.dir.join("run.json"), s)
    }
}

/// A run as read back from disk: everything `runs list`/`show` and the
/// `/runs` endpoint need, without the epoch series (load that separately
/// via [`load_series`]).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Run id (directory name).
    pub id: String,
    /// The run's directory.
    pub dir: PathBuf,
    /// Manifest, when `manifest.json` parses.
    pub manifest: Option<RunManifest>,
    /// `completed` / `diverged` from `run.json`, or `incomplete` when
    /// the run never finished (crashed or still training).
    pub status: String,
    /// Per-phase accounting from `run.json`.
    pub phases: Vec<PhaseSummary>,
    /// Watchdog abort record, if the run diverged.
    pub divergence: Option<DivergenceRecord>,
    /// Final metrics from `run.json` (includes `paper.*` reference keys).
    pub end_metrics: Vec<(String, f64)>,
    /// Path of the exported model checkpoint, when the CLI recorded one.
    pub checkpoint: Option<String>,
}

/// Load one run directory.
pub fn load_run(dir: &Path) -> Result<RunSummary, String> {
    let id = dir
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or("run dir has no name")?
        .to_string();
    let manifest = fs::read_to_string(dir.join("manifest.json"))
        .ok()
        .and_then(|t| parse_json(&t).ok())
        .and_then(|v| RunManifest::from_json(&v).ok());
    let mut status = "incomplete".to_string();
    let mut phases = Vec::new();
    let mut divergence = None;
    let mut end_metrics = Vec::new();
    let mut checkpoint = None;
    if let Ok(text) = fs::read_to_string(dir.join("run.json")) {
        let v = parse_json(&text).map_err(|e| format!("{id}/run.json: {e}"))?;
        if let Some(s) = v.get("status").and_then(Json::as_str) {
            status = s.to_string();
        }
        if let Some(arr) = v.get("phases").and_then(Json::as_arr) {
            for p in arr {
                phases.push(PhaseSummary {
                    name: p
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    epochs: p.get("epochs").and_then(Json::as_u64).unwrap_or(0),
                    wall_us: p.get("wall_us").and_then(Json::as_u64).unwrap_or(0),
                    final_loss: p
                        .get("final_loss")
                        .and_then(Json::as_f64)
                        .unwrap_or(f64::NAN),
                });
            }
        }
        divergence = v.get("divergence").and_then(DivergenceRecord::from_json);
        if let Some(m) = v.get("end_metrics").and_then(Json::as_obj) {
            for (k, val) in m {
                end_metrics.push((k.clone(), val.as_f64().unwrap_or(f64::NAN)));
            }
        }
        checkpoint = v
            .get("checkpoint")
            .and_then(Json::as_str)
            .map(str::to_string);
    }
    Ok(RunSummary {
        id,
        dir: dir.to_path_buf(),
        manifest,
        status,
        phases,
        divergence,
        end_metrics,
        checkpoint,
    })
}

/// Enumerate every run under a runs root, oldest first (by manifest
/// creation time, then id). Directories that aren't ledgers are skipped.
pub fn list_runs(root: &Path) -> Vec<RunSummary> {
    let mut runs = Vec::new();
    let Ok(entries) = fs::read_dir(root) else {
        return runs;
    };
    for entry in entries.flatten() {
        let dir = entry.path();
        if !dir.is_dir() || !dir.join("manifest.json").exists() {
            continue;
        }
        if let Ok(run) = load_run(&dir) {
            runs.push(run);
        }
    }
    runs.sort_by(|a, b| {
        let ka = a.manifest.as_ref().map_or(0, |m| m.created_unix_ms);
        let kb = b.manifest.as_ref().map_or(0, |m| m.created_unix_ms);
        ka.cmp(&kb).then_with(|| a.id.cmp(&b.id))
    });
    runs
}

/// Load a run's epoch series from `series.jsonl`.
pub fn load_series(dir: &Path) -> Result<Vec<EpochRecord>, String> {
    let text = fs::read_to_string(dir.join("series.jsonl"))
        .map_err(|e| format!("{}: {e}", dir.join("series.jsonl").display()))?;
    parse_series(&text)
}

/// Render the `/runs` endpoint body: a JSON array of run summaries.
pub fn render_runs_json(runs: &[RunSummary]) -> String {
    let mut s = String::from("[");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"id\":");
        push_escaped(&mut s, &r.id);
        s.push_str(",\"status\":");
        push_escaped(&mut s, &r.status);
        s.push_str(",\"seed\":");
        s.push_str(
            &r.manifest
                .as_ref()
                .map_or("null".to_string(), |m| m.seed.to_string()),
        );
        s.push_str(",\"phases\":[");
        for (j, p) in r.phases.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            push_escaped(&mut s, &p.name);
            s.push_str(&format!(",\"epochs\":{},\"final_loss\":", p.epochs));
            push_f64(&mut s, p.final_loss);
            s.push('}');
        }
        s.push_str("],\"diverged\":");
        s.push_str(if r.divergence.is_some() {
            "true"
        } else {
            "false"
        });
        s.push('}');
    }
    s.push(']');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::LayerStat;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("desh-runs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest(id: &str, seed: u64) -> RunManifest {
        RunManifest {
            run_id: id.to_string(),
            created_unix_ms: 1000 + seed,
            seed,
            shards: 8,
            threads: "default".into(),
            dataset: "ds-test".into(),
            config_hash: 0xdead_beef,
            config: vec![("phase1.epochs".into(), "4".into())],
        }
    }

    fn epoch(phase: &str, e: u64, loss: f64) -> EpochRecord {
        EpochRecord {
            phase: phase.into(),
            epoch: e,
            loss,
            wall_us: 10,
            grad_norm: 0.5,
            grad_reduce_us: 2.0,
            shard_seqs_per_s: vec![1.0],
            layers: vec![LayerStat {
                name: "head.w".into(),
                weight_norm: 1.0,
                grad_norm_mean: 0.1,
                grad_norm_max: 0.5,
                update_ratio: 0.01,
                nonfinite: 0,
            }],
        }
    }

    #[test]
    fn ledger_round_trips_through_disk() {
        let root = temp_root("roundtrip");
        let mut ledger = RunLedger::create(&root, manifest("run-a", 7)).unwrap();
        ledger.append_epoch(&epoch("phase1", 0, 0.9)).unwrap();
        ledger.append_epoch(&epoch("phase1", 1, 0.7)).unwrap();
        ledger.end_phase("phase1", 2, 20, 0.7);
        ledger
            .finish(
                None,
                &[("recall".into(), 0.9), ("paper.recall".into(), 0.85)],
            )
            .unwrap();

        let runs = list_runs(&root);
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.id, "run-a");
        assert_eq!(run.status, "completed");
        assert_eq!(run.manifest.as_ref().unwrap().seed, 7);
        assert_eq!(run.manifest.as_ref().unwrap().config_hash, 0xdead_beef);
        assert_eq!(run.phases.len(), 1);
        assert_eq!(run.phases[0].epochs, 2);
        assert!(run.divergence.is_none());
        assert!(run
            .end_metrics
            .iter()
            .any(|(k, v)| k == "paper.recall" && *v == 0.85));

        let series = load_series(&run.dir).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].loss, 0.7);
        assert_eq!(series[1].layers[0].name, "head.w");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn diverged_run_records_reason_and_checkpoint() {
        let root = temp_root("diverged");
        let mut ledger = RunLedger::create(&root, manifest("run-b", 8)).unwrap();
        let bad = epoch("phase2", 3, f64::NAN);
        ledger.append_epoch(&bad).unwrap();
        let ckpt = ledger
            .save_checkpoint("last-good-phase2.ckpt", b"bytes")
            .unwrap();
        let record = DivergenceRecord {
            phase: "phase2".into(),
            epoch: 3,
            reason: "nan_loss".into(),
            detail: "mean loss NaN".into(),
            last_good_checkpoint: Some(ckpt),
        };
        ledger.write_divergence(&record, &bad).unwrap();
        ledger.end_phase("phase2", 3, 30, f64::NAN);
        ledger.finish(Some(&record), &[]).unwrap();

        let run = load_run(&root.join("run-b")).unwrap();
        assert_eq!(run.status, "diverged");
        let d = run.divergence.unwrap();
        assert_eq!(d.reason, "nan_loss");
        assert_eq!(d.epoch, 3);
        assert_eq!(
            d.last_good_checkpoint.as_deref(),
            Some("last-good-phase2.ckpt")
        );
        let saved = fs::read(root.join("run-b").join("last-good-phase2.ckpt")).unwrap();
        assert_eq!(saved, b"bytes");
        // divergence.json parses and carries the offending epoch.
        let dv =
            parse_json(&fs::read_to_string(root.join("run-b").join("divergence.json")).unwrap())
                .unwrap();
        assert!(dv
            .get("offending_epoch")
            .unwrap()
            .get("loss")
            .unwrap()
            .is_null());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn unfinished_run_lists_as_incomplete() {
        let root = temp_root("incomplete");
        let mut ledger = RunLedger::create(&root, manifest("run-c", 9)).unwrap();
        ledger.append_epoch(&epoch("sgns", 0, 2.0)).unwrap();
        drop(ledger); // process died: no run.json
        let runs = list_runs(&root);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].status, "incomplete");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn create_refuses_duplicate_run_id() {
        let root = temp_root("dup");
        let _a = RunLedger::create(&root, manifest("run-d", 1)).unwrap();
        assert!(RunLedger::create(&root, manifest("run-d", 1)).is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn runs_json_renders_summaries() {
        let root = temp_root("json");
        let mut ledger = RunLedger::create(&root, manifest("run-e", 2)).unwrap();
        ledger.end_phase("phase1", 4, 40, 0.5);
        ledger.finish(None, &[]).unwrap();
        let body = render_runs_json(&list_runs(&root));
        let v = parse_json(&body).unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("id").unwrap().as_str(), Some("run-e"));
        assert_eq!(arr[0].get("status").unwrap().as_str(), Some("completed"));
        assert_eq!(arr[0].get("seed").unwrap().as_u64(), Some(2));
        let _ = fs::remove_dir_all(&root);
    }
}
