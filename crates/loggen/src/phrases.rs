//! The phrase catalog: every static message template the generator can emit.
//!
//! The inventory is lifted from the paper's own examples — Table 2 (phrase
//! vectors), Table 3 (Safe/Unknown/Error labelling), Table 4 (the MCE
//! failure chain), Table 8 (unknown-tagged phrases P1-P12) and Table 9
//! (failure vs non-failure contexts) — rounded out with generic Linux/Cray
//! chatter so benign traffic dominates, as it does in real logs.
//!
//! `Label` here is the *generator-side* ground truth. The parsing substrate
//! (`desh-logparse`) has its own rule-based labeller that works from raw
//! text; tests cross-check the two.

use desh_util::Xoshiro256pp;

/// Ground-truth phrase category (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Benign, never part of a failure chain.
    Safe,
    /// May or may not indicate an anomaly.
    Unknown,
    /// Definitely indicative of an anomaly.
    Error,
}

/// Kinds of dynamic (variable) content a template slot can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dyn {
    /// Hex word like `0x6624`.
    Hex,
    /// Small decimal integer.
    Int,
    /// Process id.
    Pid,
    /// Filesystem-ish path.
    Path,
    /// Return code like `rc = -108`.
    Rc,
    /// 64-bit address like `ffffffff810a1b2c`.
    Addr,
    /// Compact timestamp token like `20141216t162520`.
    Stamp,
}

impl Dyn {
    /// Render a random instance of this dynamic field.
    pub fn render(self, rng: &mut Xoshiro256pp) -> String {
        match self {
            Dyn::Hex => format!("0x{:x}", rng.below(1 << 32)),
            Dyn::Int => format!("{}", rng.below(512)),
            Dyn::Pid => format!("{}", 300 + rng.below(65_000)),
            Dyn::Path => {
                const DIRS: [&str; 4] = ["/proc", "/sys/devices", "/etc", "/var/run"];
                const FILES: [&str; 4] = ["stat", "config", "lock", "state"];
                format!(
                    "{}/{}{}",
                    DIRS[rng.index(4)],
                    FILES[rng.index(4)],
                    rng.below(100)
                )
            }
            Dyn::Rc => format!("-{}", 1 + rng.below(120)),
            Dyn::Addr => format!("{:016x}", rng.next_u64()),
            Dyn::Stamp => format!(
                "2014{:02}{:02}t{:02}{:02}{:02}",
                1 + rng.below(12),
                1 + rng.below(28),
                rng.below(24),
                rng.below(60),
                rng.below(60)
            ),
        }
    }
}

/// Specification of one phrase template.
#[derive(Debug, Clone, Copy)]
pub struct PhraseSpec {
    /// Short identifier for diagnostics and experiment output.
    pub name: &'static str,
    /// Message text with `{}` slots for dynamic fields.
    pub template: &'static str,
    /// Ground-truth label.
    pub label: Label,
    /// Fillers for the `{}` slots, in order.
    pub dyns: &'static [Dyn],
}

impl PhraseSpec {
    /// Render the template with random dynamic fields.
    pub fn render(&self, rng: &mut Xoshiro256pp) -> String {
        let mut out = String::with_capacity(self.template.len() + 16);
        let mut slots = self.dyns.iter();
        let mut rest = self.template;
        while let Some(pos) = rest.find("{}") {
            out.push_str(&rest[..pos]);
            let d = slots
                .next()
                .unwrap_or_else(|| panic!("template {:?} has more slots than dyns", self.name));
            out.push_str(&d.render(rng));
            rest = &rest[pos + 2..];
        }
        assert!(
            slots.next().is_none(),
            "template {:?} has fewer slots than dyns",
            self.name
        );
        out.push_str(rest);
        out
    }

    /// The static part of the phrase: template with slots elided. Useful for
    /// tests asserting template-miner output.
    pub fn static_form(&self) -> String {
        self.template.replace("{}", "*")
    }
}

macro_rules! catalog {
    ($( $variant:ident => ($name:literal, $tmpl:literal, $label:ident, [$($d:ident),*]) ),+ $(,)?) => {
        /// Every phrase the generator can emit.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u16)]
        pub enum Phrase {
            $( #[allow(missing_docs)] $variant ),+
        }

        impl Phrase {
            /// All phrases in catalog order.
            pub const ALL: &'static [Phrase] = &[ $( Phrase::$variant ),+ ];

            /// The phrase's specification.
            pub fn spec(self) -> PhraseSpec {
                match self {
                    $( Phrase::$variant => PhraseSpec {
                        name: $name,
                        template: $tmpl,
                        label: Label::$label,
                        dyns: &[ $(Dyn::$d),* ],
                    } ),+
                }
            }
        }
    };
}

catalog! {
    // ---- Safe background chatter (Table 3 column 1 + generic noise) ----
    MountNid => ("mount_nid", "Mounting NID specific", Safe, []),
    ApicTimer => ("apic_timer", "cpu {} apic_timer_irqs", Safe, [Int]),
    SettingFlag => ("setting_flag", "Setting flag {}", Safe, [Hex]),
    Wait4Boot => ("wait4boot", "Wait4Boot", Safe, []),
    EcNodeInfo => ("ec_node_info", "Sending ec_node_info with boot code {}", Safe, [Hex]),
    SysctlValues => ("sysctl", "Running {} using values from /etc/sysctl.conf", Safe, [Path]),
    LnetQuiesce => ("lnet_quiesce", "kernel LNet: hardware quiesce {}, All threads awake", Safe, [Stamp]),
    NscdReconnect => ("nscd_reconnect", "nscd: nss_ldap reconnected to LDAP server {}", Safe, [Int]),
    LustreConnected => ("lustre_connected", "Lustre: {} connected to {}", Safe, [Hex, Int]),
    SlurmLaunch => ("slurm_launch", "slurmd: launched job {} for user {}", Safe, [Int, Int]),
    BmcHeartbeat => ("bmc_heartbeat", "ipmi: BMC heartbeat ok seq {}", Safe, [Int]),
    Ext4Mounted => ("ext4_mounted", "EXT4-fs mounted filesystem with ordered data mode {}", Safe, [Hex]),

    // ---- Unknown phrases (Table 8 P1-P12, in order) ----
    LustreError => ("lustre_error", "LustreError: {} failed: rc = {}", Unknown, [Hex, Rc]),
    OomKilled => ("oom_killed", "Out of memory: Killed process {} ({})", Unknown, [Pid, Path]),
    LnetCritHw => ("lnet_crit_hw", "LNet: Critical H/W error {}", Unknown, [Hex]),
    SlurmCtrlErr => ("slurm_ctrl_err", "Slurm load partitions error: Unable to contact slurm controller {}", Unknown, [Int]),
    AerBadTlp => ("aer_bad_tlp", "hwerr[{}]: Correctable AER_BAD_TLP Error {}", Unknown, [Hex, Hex]),
    LlmrdShutdown => ("llmrd_shutdown", "Sent shutdown to llmrd at process {}", Unknown, [Pid]),
    AerMulti => ("aer_multi", "AER: Multiple corrected error recvd {}", Unknown, [Hex]),
    TrapInvalid => ("trap_invalid", "Trap invalid opcode {} Error {}", Unknown, [Addr, Hex]),
    ModprobeFatal => ("modprobe_fatal", "modprobe: FATAL: Module {} not found rc = {}", Unknown, [Path, Rc]),
    NodeHealthExit => ("node_health_exit", "<node_health> {} Warning: program {} returned with exit code {}", Unknown, [Int, Path, Int]),
    DvsVerify => ("dvs_verify", "DVS: Verify Filesystem: {}", Unknown, [Path]),
    NullDeref => ("null_deref", "BUG: unable to handle kernel NULL pointer dereference at {}", Unknown, [Addr]),

    // ---- Further unknowns used by chains and near-misses (Tables 4 & 9) ----
    MceException => ("mce_exception", "CPU {}: Machine Check Exception: {}", Unknown, [Int, Hex]),
    HwMcelog => ("hw_mcelog", "[Hardware Error]: Run the above through 'mcelog --ascii'", Unknown, []),
    HwRip => ("hw_rip", "[Hardware Error]: RIP !INEXACT! {}: {}", Unknown, [Int, Addr]),
    MceNotifyIrq => ("mce_notify_irq", "mce_notify_irq: {}", Unknown, [Hex]),
    CorrectedPage => ("corrected_page", "Corrected Memory Errors on Page {}", Unknown, [Addr]),
    CorrectedDimm => ("corrected_dimm", "Corrected DIMM Memory Errors {}", Unknown, [Hex]),
    HwerrProto => ("hwerr_proto", "hwerr {}: ssid_rsp_a_status_msg_protocol_error {}", Unknown, [Hex, Hex]),
    GsocketsCrit => ("gsockets_crit", "[Gsockets] debug[{}]: critical h/w error {}", Unknown, [Int, Hex]),
    PcieCorrected => ("pcie_corrected", "PCIe Bus Error: severity=Corrected, type=Physical Layer {}", Unknown, [Hex]),
    LnetNoTraffic => ("lnet_no_traffic", "LNet: No gnilnd traffic received from {}", Unknown, [Int]),
    LnetReaper => ("lnet_reaper", "LNet: kgnilnd reaper dgram check {}", Unknown, [Int]),
    Segfault => ("segfault", "segfault at {} ip {} sp {} error {}", Unknown, [Addr, Addr, Addr, Int]),
    SlurmAbort => ("slurm_abort", "slurmd: error: {} aborted job {}", Unknown, [Path, Int]),
    DvsNoServers => ("dvs_no_servers", "DVS: {} no servers functioning properly", Unknown, [Path]),
    LustreSkipped => ("lustre_skipped", "Lustre: {} binary skipped rc = {}", Unknown, [Path, Rc]),
    StartprocFailed => ("startproc_failed", "startproc: nss_ldap: failed rc = {}", Unknown, [Rc]),

    // ---- Error phrases (Table 3 column 3) ----
    NodeDown => ("node_down", "WARNING: Node {} is down", Error, [Int]),
    DebugNmi => ("debug_nmi", "Debug NMI detected {}", Error, [Hex]),
    CbNodeUnavailable => ("cb_node_unavailable", "cb_node_unavailable {}", Error, [Int]),
    PanicFatalMce => ("panic_fatal_mce", "Kernel panic - not syncing: Fatal Machine check", Error, []),
    PanicNotSyncing => ("panic_not_syncing", "Kernel panic - not syncing: {}", Error, [Path]),
    CallTrace => ("call_trace", "Call Trace: {}", Error, [Addr]),
    StopNmi => ("stop_nmi", "Stop NMI detected {}", Error, [Hex]),
    HeartbeatFault => ("heartbeat_fault", "Node heartbeat fault {}", Error, [Int]),
    SlurmdStopped => ("slurmd_stopped", "slurmd stopped {}", Error, [Int]),
    SystemHalted => ("system_halted", "System: halted", Error, []),
}

impl Phrase {
    /// Ground-truth label.
    pub fn label(self) -> Label {
        self.spec().label
    }

    /// Render with random dynamic fields.
    pub fn render(self, rng: &mut Xoshiro256pp) -> String {
        self.spec().render(rng)
    }

    /// Terminal phrases that mark an **anomalous** node failure (verified
    /// with admins, per the paper). Maintenance shutdowns use
    /// [`Phrase::SystemHalted`] instead and must not match.
    pub fn is_failure_terminal(self) -> bool {
        matches!(self, Phrase::CbNodeUnavailable | Phrase::NodeDown)
    }

    /// The Table 8 unknown phrases (P1..P12) in paper order, with the
    /// paper's reported percentage contribution to node failures.
    pub fn table8() -> [(Phrase, f64); 12] {
        [
            (Phrase::LustreError, 56.0),
            (Phrase::OomKilled, 15.0),
            (Phrase::LnetCritHw, 36.0),
            (Phrase::SlurmCtrlErr, 42.0),
            (Phrase::AerBadTlp, 12.0),
            (Phrase::LlmrdShutdown, 17.0),
            (Phrase::AerMulti, 21.0),
            (Phrase::TrapInvalid, 8.0),
            (Phrase::ModprobeFatal, 27.0),
            (Phrase::NodeHealthExit, 29.0),
            (Phrase::DvsVerify, 60.0),
            (Phrase::NullDeref, 25.0),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for p in Phrase::ALL {
            assert!(names.insert(p.spec().name), "duplicate name {}", p.spec().name);
        }
        assert!(Phrase::ALL.len() >= 40, "catalog unexpectedly small");
    }

    #[test]
    fn slots_match_dyns_for_every_phrase() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for p in Phrase::ALL {
            let spec = p.spec();
            let slot_count = spec.template.matches("{}").count();
            assert_eq!(slot_count, spec.dyns.len(), "{}", spec.name);
            // Render must not panic and must not keep any '{}'.
            let text = spec.render(&mut rng);
            assert!(!text.contains("{}"), "{}: {text}", spec.name);
        }
    }

    #[test]
    fn rendered_dynamic_fields_vary() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let a = Phrase::LustreError.render(&mut rng);
        let b = Phrase::LustreError.render(&mut rng);
        assert_ne!(a, b, "dynamic fields should differ between renders");
        // Static part is shared.
        assert!(a.starts_with("LustreError: ") && b.starts_with("LustreError: "));
    }

    #[test]
    fn label_partition_is_sensible() {
        use Label::*;
        let safe = Phrase::ALL.iter().filter(|p| p.label() == Safe).count();
        let unknown = Phrase::ALL.iter().filter(|p| p.label() == Unknown).count();
        let error = Phrase::ALL.iter().filter(|p| p.label() == Error).count();
        assert!(safe >= 10 && unknown >= 20 && error >= 8, "{safe}/{unknown}/{error}");
    }

    #[test]
    fn terminal_set_excludes_maintenance() {
        assert!(Phrase::CbNodeUnavailable.is_failure_terminal());
        assert!(Phrase::NodeDown.is_failure_terminal());
        assert!(!Phrase::SystemHalted.is_failure_terminal());
        assert!(!Phrase::StopNmi.is_failure_terminal());
    }

    #[test]
    fn table8_is_complete_and_unknown() {
        let t8 = Phrase::table8();
        assert_eq!(t8.len(), 12);
        for (p, pct) in t8 {
            assert_eq!(p.label(), Label::Unknown, "{:?}", p);
            assert!((5.0..=65.0).contains(&pct));
        }
    }

    #[test]
    fn static_form_elides_slots() {
        assert_eq!(
            Phrase::MceException.spec().static_form(),
            "CPU *: Machine Check Exception: *"
        );
    }

    #[test]
    fn render_is_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for p in Phrase::ALL {
            assert_eq!(p.render(&mut a), p.render(&mut b));
        }
    }
}
