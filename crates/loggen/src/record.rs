//! Log records and their raw-line rendering.
//!
//! A generated dataset is a time-sorted stream of records shaped like the
//! paper's Table 2 rows: `timestamp node-id free-text-phrase`. The raw-line
//! form exists so the parsing substrate (`desh-logparse`) genuinely works
//! from unstructured text, not from the generator's internal structures.

use crate::nodeid::NodeId;
use desh_util::Micros;
use std::fmt;
use std::str::FromStr;

/// One log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Offset from dataset start.
    pub time: Micros,
    /// Emitting node.
    pub node: NodeId,
    /// Unstructured message text (static phrase + dynamic fields).
    pub text: String,
}

impl LogRecord {
    /// Construct a record.
    pub fn new(time: Micros, node: NodeId, text: impl Into<String>) -> Self {
        Self { time, node, text: text.into() }
    }

    /// Render as a raw syslog-style line.
    pub fn to_raw_line(&self) -> String {
        format!("{} {} {}", self.time.as_clock(), self.node, self.text)
    }
}

impl fmt::Display for LogRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_raw_line())
    }
}

/// Error parsing a raw log line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecordError(pub String);

impl fmt::Display for ParseRecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid log line: {}", self.0)
    }
}

impl std::error::Error for ParseRecordError {}

impl FromStr for LogRecord {
    type Err = ParseRecordError;

    /// Parse a raw line back into a record. Note the clock wraps at 24h, so
    /// multi-day datasets must be re-sequenced by the caller; the generator
    /// keeps native `Micros` alongside raw lines to avoid ambiguity.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseRecordError(s.to_string());
        let mut parts = s.splitn(3, ' ');
        let time = Micros::parse_clock(parts.next().ok_or_else(err)?).ok_or_else(err)?;
        let node: NodeId = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let text = parts.next().ok_or_else(err)?.to_string();
        if text.is_empty() {
            return Err(err());
        }
        Ok(LogRecord { time, node, text })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodeid::NodeId;

    #[test]
    fn raw_line_round_trip() {
        let r = LogRecord::new(
            Micros::from_secs(59_148) + Micros(301_744),
            NodeId::new(1, 0, 1, 1, 0),
            "kernel LNet: hardware quiesce 20141216t162520, All threads awake",
        );
        let line = r.to_raw_line();
        assert_eq!(line, "16:25:48.301744 c1-0c1s1n0 kernel LNet: hardware quiesce 20141216t162520, All threads awake");
        let parsed: LogRecord = line.parse().unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "16:25:48.301744",
            "16:25:48.301744 c1-0c1s1n0",
            "not-a-time c1-0c1s1n0 hello",
            "16:25:48.301744 not-a-node hello",
        ] {
            assert!(bad.parse::<LogRecord>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn text_keeps_internal_spaces() {
        let line = "00:00:01.000000 c0-0c0s0n0 a b  c   d";
        let r: LogRecord = line.parse().unwrap();
        assert_eq!(r.text, "a b  c   d");
    }
}
