//! Runtime scenario construction.
//!
//! The static [`crate::scenario::SCENARIOS`] catalog mirrors the paper's
//! Table 7, but a downstream user studying their own system will have
//! their own fault cascades. [`ScenarioBuilder`] assembles custom chains
//! (phrases, inclusion probabilities, timing) at runtime, and
//! [`CustomScenario::sample`] produces instances with the same offset
//! semantics as the built-in classes.

use crate::phrases::Phrase;
use crate::scenario::ChainInstance;
use desh_util::Xoshiro256pp;

/// A runtime-defined failure scenario.
#[derive(Debug, Clone)]
pub struct CustomScenario {
    name: String,
    steps: Vec<(Phrase, f64)>,
    terminal: Phrase,
    lead_mean_secs: f64,
    lead_sd_secs: f64,
    gamma: f64,
}

/// Builder for [`CustomScenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    steps: Vec<(Phrase, f64)>,
    terminal: Option<Phrase>,
    lead_mean_secs: f64,
    lead_sd_secs: f64,
    gamma: f64,
}

impl ScenarioBuilder {
    /// Start a scenario with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            steps: Vec::new(),
            terminal: None,
            lead_mean_secs: 120.0,
            lead_sd_secs: 18.0,
            gamma: 0.9,
        }
    }

    /// Append a chain step with an inclusion probability in [0, 1].
    pub fn step(mut self, phrase: Phrase, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.steps.push((phrase, prob));
        self
    }

    /// Set the terminal message (must be a failure terminal).
    pub fn terminal(mut self, phrase: Phrase) -> Self {
        assert!(
            phrase.is_failure_terminal(),
            "{phrase:?} is not a failure terminal"
        );
        self.terminal = Some(phrase);
        self
    }

    /// Set the lead-time distribution (mean and standard deviation, secs).
    pub fn lead_secs(mut self, mean: f64, sd: f64) -> Self {
        assert!(mean > 0.0 && sd >= 0.0);
        self.lead_mean_secs = mean;
        self.lead_sd_secs = sd;
        self
    }

    /// Set the cascade shape exponent (see `scenario::sample_chain`;
    /// below 1 keeps early events near the chain start).
    pub fn gamma(mut self, gamma: f64) -> Self {
        assert!(gamma > 0.0);
        self.gamma = gamma;
        self
    }

    /// Finish. Requires a terminal and at least two steps.
    pub fn build(self) -> CustomScenario {
        assert!(self.steps.len() >= 2, "a chain needs at least two steps");
        CustomScenario {
            name: self.name,
            steps: self.steps,
            terminal: self.terminal.expect("terminal not set"),
            lead_mean_secs: self.lead_mean_secs,
            lead_sd_secs: self.lead_sd_secs,
            gamma: self.gamma,
        }
    }
}

impl CustomScenario {
    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sample an instance: (seconds-before-terminal, phrase) pairs oldest
    /// first, terminal last at 0.0 — the same contract as
    /// [`crate::scenario::sample_chain`].
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> ChainInstance {
        let mut chosen: Vec<Phrase> = self
            .steps
            .iter()
            .filter(|(_, p)| rng.chance(*p))
            .map(|(ph, _)| *ph)
            .collect();
        if chosen.len() < 2 {
            chosen = self.steps.iter().take(2).map(|(ph, _)| *ph).collect();
        }
        let lead = rng
            .normal_with(self.lead_mean_secs, self.lead_sd_secs)
            .clamp(self.lead_mean_secs * 0.35, self.lead_mean_secs * 1.9);
        let n = chosen.len();
        let mut events: Vec<(f64, Phrase)> = chosen
            .into_iter()
            .enumerate()
            .map(|(k, p)| {
                let frac = 1.0 - (k as f64) / (n as f64);
                let jitter = 1.0 + (rng.f64() - 0.5) * 0.25;
                ((lead * frac.powf(self.gamma) * jitter).max(0.3), p)
            })
            .collect();
        events[0].0 = lead;
        for k in 1..events.len() {
            let max_allowed = events[k - 1].0 - 0.25;
            if events[k].0 >= max_allowed {
                events[k].0 = max_allowed.max(0.3);
            }
        }
        events.push((0.0, self.terminal));
        ChainInstance { class: crate::scenario::FailureClass::Panic, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu_scenario() -> CustomScenario {
        // A made-up "GPU" cascade assembled from existing phrases.
        ScenarioBuilder::new("gpu_xid")
            .step(Phrase::PcieCorrected, 0.9)
            .step(Phrase::AerMulti, 0.8)
            .step(Phrase::NullDeref, 0.7)
            .step(Phrase::CallTrace, 0.9)
            .terminal(Phrase::CbNodeUnavailable)
            .lead_secs(200.0, 25.0)
            .build()
    }

    #[test]
    fn custom_scenarios_sample_valid_chains() {
        let sc = gpu_scenario();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            let c = sc.sample(&mut rng);
            assert!(c.events.len() >= 3);
            for w in c.events.windows(2) {
                assert!(w[0].0 > w[1].0, "offsets must decrease");
            }
            assert_eq!(c.events.last().unwrap().0, 0.0);
            assert!(c.events.last().unwrap().1.is_failure_terminal());
        }
    }

    #[test]
    fn lead_distribution_matches_spec() {
        let sc = gpu_scenario();
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mean: f64 =
            (0..400).map(|_| sc.sample(&mut rng).lead_secs()).sum::<f64>() / 400.0;
        assert!((mean - 200.0).abs() < 25.0, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn non_terminal_rejected() {
        ScenarioBuilder::new("bad").terminal(Phrase::Wait4Boot);
    }

    #[test]
    #[should_panic]
    fn too_few_steps_rejected() {
        ScenarioBuilder::new("bad")
            .step(Phrase::CallTrace, 1.0)
            .terminal(Phrase::CbNodeUnavailable)
            .build();
    }
}

/// Assemble a dataset from custom scenarios: injected chains plus benign
/// routine noise. A lighter-weight sibling of [`crate::generate`] for
/// studies of user-defined fault cascades (no near-misses, maintenance, or
/// Table 8 calibration — add confounders as extra scenarios if needed).
pub fn synthesize(
    scenarios: &[(CustomScenario, f64)],
    nodes: usize,
    duration: desh_util::Micros,
    failures: usize,
    noise_per_node_hour: f64,
    seed: u64,
) -> crate::generator::Dataset {
    use crate::generator::GroundTruthFailure;
    use crate::nodeid::Cluster;
    use crate::record::LogRecord;
    use desh_util::Micros;

    assert!(!scenarios.is_empty());
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xC057_0001);
    let cluster = Cluster::with_nodes(nodes);
    let weights: Vec<f64> = scenarios.iter().map(|(_, w)| *w).collect();
    let mut records: Vec<LogRecord> = Vec::new();
    let mut truth: Vec<GroundTruthFailure> = Vec::new();

    for _ in 0..failures {
        let (scenario, _) = &scenarios[rng.weighted(&weights)];
        let node = cluster.node(rng.index(cluster.len()));
        let terminal = Micros(rng.range_u64(duration.0 / 50, duration.0 - duration.0 / 100));
        let chain = scenario.sample(&mut rng);
        for (before_secs, phrase) in &chain.events {
            let t = terminal.saturating_sub(Micros::from_secs_f64(*before_secs));
            records.push(LogRecord::new(t, node, phrase.render(&mut rng)));
        }
        truth.push(GroundTruthFailure { node, time: terminal, class: chain.class });
    }

    // Routine noise, same cycles as the main generator.
    let cycles = crate::scenario::routine_cycles();
    let rate_per_us = noise_per_node_hour / desh_util::time::MICROS_PER_HOUR as f64;
    for (idx, node) in cluster.nodes().iter().enumerate() {
        let cycle = cycles[idx % cycles.len()];
        let mut pos = rng.index(cycle.len());
        let mut t = rng.exponential(rate_per_us);
        while (t as u64) < duration.0 {
            let p = cycle[pos];
            pos = (pos + 1) % cycle.len();
            records.push(LogRecord::new(Micros(t as u64), *node, p.render(&mut rng)));
            t += rng.exponential(rate_per_us);
        }
    }

    records.sort_by(|a, b| a.time.cmp(&b.time).then_with(|| a.node.cmp(&b.node)));
    truth.sort_by_key(|f| f.time);
    crate::generator::Dataset {
        system: "custom".into(),
        nodes,
        duration,
        records,
        failures: truth,
    }
}

#[cfg(test)]
mod synthesize_tests {
    use super::*;
    use desh_util::Micros;

    #[test]
    fn synthesize_produces_sorted_records_and_truth() {
        let sc = ScenarioBuilder::new("custom")
            .step(Phrase::PcieCorrected, 0.9)
            .step(Phrase::NullDeref, 0.9)
            .step(Phrase::CallTrace, 0.9)
            .terminal(Phrase::CbNodeUnavailable)
            .lead_secs(90.0, 10.0)
            .build();
        let d = synthesize(&[(sc, 1.0)], 8, Micros::from_hours(4), 10, 4.0, 5);
        assert_eq!(d.failures.len(), 10);
        for w in d.records.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Every failure has a terminal line.
        for f in &d.failures {
            assert!(d
                .records
                .iter()
                .any(|r| r.node == f.node && r.time == f.time));
        }
    }
}
