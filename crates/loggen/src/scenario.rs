//! Failure scenarios, near-miss confounders, and maintenance events.
//!
//! Table 7 of the paper defines six node-failure classes with
//! characteristic average lead times (time from the first anomalous phrase
//! of the chain to the terminal message). Each class here carries a phrase
//! chain assembled from the paper's own examples and a lead-time
//! distribution centred on the paper's reported average.
//!
//! Near-misses reproduce Table 9's right-hand columns: sequences of
//! anomalous ("Unknown") phrases that share prefixes with real failure
//! chains but never reach a terminal message — the source of false
//! positives, and the reason the lead-time/FP-rate trade-off (Figure 8)
//! exists at all.

use crate::phrases::Phrase;
use desh_util::Xoshiro256pp;

/// Node-failure classes (paper Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FailureClass {
    /// Slurm scheduler / application-related failures.
    Job,
    /// Hardware machine check exceptions, memory faults, processor corruption.
    Mce,
    /// Lustre/DVS bugs, packet and protocol errors.
    FileSystem,
    /// Segmentation faults, invalid opcodes, software interrupts.
    Traps,
    /// NMI faults, heartbeat errors, critical hardware errors.
    Hardware,
    /// Kernel panic with stack trace.
    Panic,
}

impl FailureClass {
    /// All classes, Table 7 order.
    pub const ALL: [FailureClass; 6] = [
        FailureClass::Job,
        FailureClass::Mce,
        FailureClass::FileSystem,
        FailureClass::Traps,
        FailureClass::Hardware,
        FailureClass::Panic,
    ];

    /// Display name matching the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            FailureClass::Job => "Job",
            FailureClass::Mce => "MCE",
            FailureClass::FileSystem => "FileSystem",
            FailureClass::Traps => "Traps",
            FailureClass::Hardware => "H/W",
            FailureClass::Panic => "Panic",
        }
    }

    /// Average lead time in seconds reported by the paper (Table 7).
    pub fn paper_lead_secs(self) -> f64 {
        match self {
            FailureClass::Job => 81.52,
            FailureClass::Mce => 160.29,
            FailureClass::FileSystem => 119.32,
            FailureClass::Traps => 115.74,
            FailureClass::Hardware => 124.29,
            FailureClass::Panic => 58.87,
        }
    }

    /// The scenario specification for this class.
    pub fn spec(self) -> &'static ScenarioSpec {
        &SCENARIOS[match self {
            FailureClass::Job => 0,
            FailureClass::Mce => 1,
            FailureClass::FileSystem => 2,
            FailureClass::Traps => 3,
            FailureClass::Hardware => 4,
            FailureClass::Panic => 5,
        }]
    }
}

/// One optional step of a chain: the phrase and its inclusion probability.
#[derive(Debug, Clone, Copy)]
pub struct ChainStep {
    /// Phrase emitted at this step.
    pub phrase: Phrase,
    /// Probability the step appears in a sampled chain instance.
    pub prob: f64,
}

const fn step(phrase: Phrase, prob: f64) -> ChainStep {
    ChainStep { phrase, prob }
}

/// A failure-class scenario: ordered pre-terminal steps, the terminal
/// message, and the lead-time distribution.
#[derive(Debug)]
pub struct ScenarioSpec {
    /// The class this scenario realises.
    pub class: FailureClass,
    /// Ordered candidate steps before the terminal message.
    pub steps: &'static [ChainStep],
    /// Terminal message marking the node failure.
    pub terminal: Phrase,
    /// Mean lead time (first chain phrase → terminal), seconds.
    pub lead_mean_secs: f64,
    /// Lead-time standard deviation, seconds. Per the paper's Observation 4
    /// this is deliberately small relative to cross-class spread.
    pub lead_sd_secs: f64,
}

/// The six scenarios, Table 7 order. Chains follow the paper's examples:
/// the MCE chain is Table 4 verbatim; FS/Job/Traps/H-W/Panic chains are
/// assembled from Tables 8 and 9.
pub static SCENARIOS: [ScenarioSpec; 6] = [
    ScenarioSpec {
        class: FailureClass::Job,
        steps: &[
            step(Phrase::SlurmCtrlErr, 0.95),
            step(Phrase::NodeHealthExit, 0.85),
            step(Phrase::SlurmAbort, 0.85),
            step(Phrase::OomKilled, 0.45),
            step(Phrase::SlurmdStopped, 0.95),
        ],
        terminal: Phrase::CbNodeUnavailable,
        lead_mean_secs: 81.52,
        lead_sd_secs: 14.0,
    },
    ScenarioSpec {
        class: FailureClass::Mce,
        steps: &[
            step(Phrase::MceException, 1.0),
            step(Phrase::HwMcelog, 0.9),
            step(Phrase::HwRip, 0.85),
            step(Phrase::MceNotifyIrq, 0.85),
            step(Phrase::CorrectedPage, 0.85),
            step(Phrase::PanicFatalMce, 0.9),
            step(Phrase::CallTrace, 0.9),
        ],
        terminal: Phrase::CbNodeUnavailable,
        lead_mean_secs: 160.29,
        lead_sd_secs: 24.0,
    },
    ScenarioSpec {
        class: FailureClass::FileSystem,
        steps: &[
            step(Phrase::LustreError, 1.0),
            step(Phrase::DvsVerify, 0.85),
            step(Phrase::LnetCritHw, 0.85),
            step(Phrase::DvsNoServers, 0.85),
            step(Phrase::LustreSkipped, 0.45),
            step(Phrase::LlmrdShutdown, 0.85),
        ],
        terminal: Phrase::NodeDown,
        lead_mean_secs: 119.32,
        lead_sd_secs: 18.0,
    },
    ScenarioSpec {
        class: FailureClass::Traps,
        steps: &[
            step(Phrase::TrapInvalid, 0.9),
            step(Phrase::Segfault, 0.85),
            step(Phrase::NullDeref, 0.85),
            step(Phrase::ModprobeFatal, 0.85),
            step(Phrase::CallTrace, 0.85),
        ],
        terminal: Phrase::CbNodeUnavailable,
        lead_mean_secs: 115.74,
        lead_sd_secs: 17.0,
    },
    ScenarioSpec {
        class: FailureClass::Hardware,
        steps: &[
            step(Phrase::AerBadTlp, 0.85),
            step(Phrase::AerMulti, 0.85),
            step(Phrase::GsocketsCrit, 0.85),
            step(Phrase::HwerrProto, 0.85),
            step(Phrase::HeartbeatFault, 0.9),
            step(Phrase::DebugNmi, 0.85),
            step(Phrase::StopNmi, 0.9),
        ],
        terminal: Phrase::CbNodeUnavailable,
        lead_mean_secs: 124.29,
        lead_sd_secs: 19.0,
    },
    ScenarioSpec {
        class: FailureClass::Panic,
        steps: &[
            step(Phrase::NullDeref, 0.85),
            step(Phrase::OomKilled, 0.45),
            step(Phrase::PanicNotSyncing, 1.0),
            step(Phrase::CallTrace, 0.95),
            step(Phrase::StopNmi, 0.85),
        ],
        terminal: Phrase::CbNodeUnavailable,
        lead_mean_secs: 58.87,
        lead_sd_secs: 11.0,
    },
];

/// A sampled chain instance: phrases with their time *before* the terminal
/// message, in seconds, ordered oldest first. The terminal itself is the
/// last element at offset 0.
#[derive(Debug, Clone)]
pub struct ChainInstance {
    /// The failure class sampled.
    pub class: FailureClass,
    /// (seconds before terminal, phrase) pairs, oldest first; last is the
    /// terminal at 0.0.
    pub events: Vec<(f64, Phrase)>,
}

impl ChainInstance {
    /// Lead time of this instance: first event offset.
    pub fn lead_secs(&self) -> f64 {
        self.events.first().map(|(t, _)| *t).unwrap_or(0.0)
    }
}

/// Sample a chain for `class`. Steps are included independently with their
/// probabilities (at least two pre-terminal steps are forced so a chain is
/// recognisable); gaps follow the class lead-time distribution with the
/// cascade accelerating toward the terminal, like the Table 4 example.
pub fn sample_chain(class: FailureClass, rng: &mut Xoshiro256pp) -> ChainInstance {
    let spec = class.spec();
    let mut chosen: Vec<Phrase> = spec
        .steps
        .iter()
        .filter(|s| rng.chance(s.prob))
        .map(|s| s.phrase)
        .collect();
    if chosen.len() < 3 {
        // Force the three most likely steps to keep the chain recognisable
        // (and its episode above the extraction minimum).
        let mut ranked: Vec<&ChainStep> = spec.steps.iter().collect();
        ranked.sort_by(|a, b| b.prob.partial_cmp(&a.prob).unwrap());
        chosen = ranked.iter().take(3).map(|s| s.phrase).collect();
        // Restore catalog order.
        chosen.sort_by_key(|p| {
            spec.steps
                .iter()
                .position(|s| s.phrase == *p)
                .expect("phrase from spec")
        });
    }

    let lead = rng
        .normal_with(spec.lead_mean_secs, spec.lead_sd_secs)
        .clamp(spec.lead_mean_secs * 0.35, spec.lead_mean_secs * 1.9);

    // Offsets before terminal: the k-th of n pre-terminal events sits at
    // lead * (1 - k/n)^gamma. gamma slightly below 1 keeps the early events
    // bunched near the chain start with the cascade accelerating into the
    // terminal, matching the Table 4 example's spacing.
    let n = chosen.len();
    let gamma = 0.9f64;
    let mut events: Vec<(f64, Phrase)> = chosen
        .into_iter()
        .enumerate()
        .map(|(k, p)| {
            let frac = 1.0 - (k as f64) / (n as f64);
            let jitter = 1.0 + (rng.f64() - 0.5) * 0.25;
            let offset = lead * frac.powf(gamma) * jitter;
            (offset.max(0.3), p)
        })
        .collect();
    // First event defines the lead exactly.
    events[0].0 = lead;
    // Enforce strictly decreasing offsets (sorting + minimum gap).
    for k in 1..events.len() {
        let max_allowed = events[k - 1].0 - 0.25;
        if events[k].0 >= max_allowed {
            events[k].0 = max_allowed.max(0.3);
        }
    }
    events.push((0.0, spec.terminal));
    ChainInstance { class, events }
}

/// A near-miss scenario: anomalous phrases that do not end in failure
/// (Table 9, "Not Failure" columns).
#[derive(Debug)]
pub struct NearMissSpec {
    /// Diagnostic name.
    pub name: &'static str,
    /// Relative sampling weight (hard chain-prefix confounders are rarer
    /// than garden-variety blips in real logs).
    pub weight: f64,
    /// Ordered candidate steps.
    pub steps: &'static [ChainStep],
    /// Benign phrases that close the episode (the fault was corrected).
    pub recovery: &'static [Phrase],
    /// Mean episode span, seconds.
    pub span_mean_secs: f64,
}

/// Near-miss catalog. Each deliberately shares a prefix with one of the
/// failure scenarios (Observation 5: the same phrase can be benign in one
/// context and part of a failure chain in another). The `*_prefix` entries
/// are verbatim chain openings that simply never reach a terminal — the
/// paper's §4.2 caveat: "there are several other sequence of events similar
/// to a target failure chain not leading to a failed node", which is what
/// makes early flagging cost false positives (Figure 8).
pub static NEAR_MISSES: [NearMissSpec; 9] = [
    NearMissSpec {
        name: "mce_prefix",
        weight: 0.65,
        steps: &[
            step(Phrase::MceException, 0.95),
            step(Phrase::HwMcelog, 0.9),
            step(Phrase::HwRip, 0.8),
            step(Phrase::MceNotifyIrq, 0.7),
        ],
        recovery: &[Phrase::LnetQuiesce],
        span_mean_secs: 100.0,
    },
    NearMissSpec {
        name: "hw_prefix",
        weight: 0.45,
        steps: &[
            step(Phrase::GsocketsCrit, 0.95),
            step(Phrase::HwerrProto, 0.8),
            step(Phrase::HeartbeatFault, 0.9),
            step(Phrase::DebugNmi, 0.6),
        ],
        recovery: &[Phrase::BmcHeartbeat],
        span_mean_secs: 85.0,
    },
    NearMissSpec {
        name: "fs_prefix",
        weight: 0.45,
        steps: &[
            step(Phrase::LustreError, 0.95),
            step(Phrase::DvsVerify, 0.9),
            step(Phrase::LnetCritHw, 0.8),
            step(Phrase::DvsNoServers, 0.7),
        ],
        recovery: &[Phrase::LustreConnected],
        span_mean_secs: 80.0,
    },
    NearMissSpec {
        name: "traps_prefix",
        weight: 0.65,
        steps: &[
            step(Phrase::TrapInvalid, 0.95),
            step(Phrase::Segfault, 0.9),
            step(Phrase::NullDeref, 0.8),
        ],
        recovery: &[Phrase::NscdReconnect],
        span_mean_secs: 75.0,
    },
    NearMissSpec {
        name: "traps_recovered",
        weight: 4.5,
        steps: &[
            step(Phrase::TrapInvalid, 0.9),
            step(Phrase::OomKilled, 0.85),
            step(Phrase::NodeHealthExit, 0.85),
            step(Phrase::HwerrProto, 0.85),
        ],
        recovery: &[Phrase::NscdReconnect],
        span_mean_secs: 110.0,
    },
    NearMissSpec {
        name: "mce_corrected",
        weight: 4.5,
        steps: &[
            step(Phrase::MceException, 0.85),
            step(Phrase::CorrectedDimm, 0.9),
            step(Phrase::CorrectedPage, 0.85),
            step(Phrase::MceNotifyIrq, 0.85),
        ],
        recovery: &[Phrase::LnetQuiesce, Phrase::LustreConnected],
        span_mean_secs: 150.0,
    },
    NearMissSpec {
        name: "lustre_blip",
        weight: 4.5,
        steps: &[
            step(Phrase::LustreError, 0.95),
            step(Phrase::LustreSkipped, 0.85),
            step(Phrase::DvsVerify, 0.85),
            step(Phrase::LnetNoTraffic, 0.85),
            step(Phrase::LnetReaper, 0.85),
        ],
        recovery: &[Phrase::LustreConnected],
        span_mean_secs: 115.0,
    },
    NearMissSpec {
        name: "pcie_corrected",
        weight: 1.2,
        steps: &[
            step(Phrase::AerBadTlp, 0.85),
            step(Phrase::PcieCorrected, 0.9),
            step(Phrase::AerMulti, 0.85),
            step(Phrase::GsocketsCrit, 0.45),
        ],
        recovery: &[Phrase::BmcHeartbeat],
        span_mean_secs: 120.0,
    },
    NearMissSpec {
        name: "slurm_blip",
        weight: 2.5,
        steps: &[
            step(Phrase::SlurmCtrlErr, 0.9),
            step(Phrase::NodeHealthExit, 0.85),
            step(Phrase::StartprocFailed, 0.85),
        ],
        recovery: &[Phrase::SlurmLaunch],
        span_mean_secs: 80.0,
    },
];

/// A sampled near-miss: (seconds before episode end, phrase), oldest first.
#[derive(Debug, Clone)]
pub struct NearMissInstance {
    /// Which catalog entry was sampled.
    pub name: &'static str,
    /// (seconds before episode end, phrase), oldest first.
    pub events: Vec<(f64, Phrase)>,
}

/// Sample a near-miss episode.
pub fn sample_near_miss(rng: &mut Xoshiro256pp) -> NearMissInstance {
    sample_near_miss_with(rng, |_| true)
}

/// Sample a near-miss episode, consulting `allow` before including a step.
/// The generator uses this to cap out-of-chain appearances of the Table 8
/// phrases so their measured failure-contribution percentages match the
/// paper's Figure 9.
pub fn sample_near_miss_with(
    rng: &mut Xoshiro256pp,
    mut allow: impl FnMut(Phrase) -> bool,
) -> NearMissInstance {
    let weights: Vec<f64> = NEAR_MISSES.iter().map(|s| s.weight).collect();
    let spec = &NEAR_MISSES[rng.weighted(&weights)];
    let mut chosen: Vec<Phrase> = spec
        .steps
        .iter()
        .filter(|s| rng.chance(s.prob) && allow(s.phrase))
        .map(|s| s.phrase)
        .collect();
    if chosen.is_empty() {
        // Fall back to the first permitted step, else the least constrained.
        let fallback = spec
            .steps
            .iter()
            .map(|s| s.phrase)
            .find(|p| allow(*p))
            .unwrap_or(spec.steps[spec.steps.len() - 1].phrase);
        chosen.push(fallback);
    }
    let span = rng
        .normal_with(spec.span_mean_secs, spec.span_mean_secs * 0.2)
        .clamp(spec.span_mean_secs * 0.4, spec.span_mean_secs * 2.0);
    let n = chosen.len() + spec.recovery.len();
    let mut events = Vec::with_capacity(n);
    for (k, p) in chosen.iter().chain(spec.recovery.iter()).enumerate() {
        let frac = 1.0 - (k as f64) / (n.max(1) as f64);
        let jitter = 1.0 + (rng.f64() - 0.5) * 0.25;
        events.push(((span * frac * jitter).max(0.2), *p));
    }
    for k in 1..events.len() {
        let max_allowed: f64 = events[k - 1].0 - 0.2;
        if events[k].0 >= max_allowed {
            events[k].0 = max_allowed.max(0.1);
        }
    }
    NearMissInstance { name: spec.name, events }
}

/// Routine background cycles: the stereotyped benign sequences (health
/// checks, boot verification, job launches) that dominate real system logs
/// and make next-phrase prediction learnable at all — the paper's phase 1
/// reaches high accuracy *because* such structure exists.
///
/// Cycles 1 and 2 deliberately share the 5-phrase run
/// `BmcHeartbeat -> ApicTimer -> NscdReconnect -> Ext4Mounted -> SlurmLaunch`
/// and then diverge: a 3-phrase history cannot tell which cycle it is in
/// at the divergence point, while an 8-phrase history can. That is the
/// mechanism behind the paper's observation that "reducing the history
/// size to 3 brings down the accuracy by 10% to 14%".
pub fn routine_cycles() -> [&'static [Phrase]; 3] {
    const C1: &[Phrase] = &[
        Phrase::Wait4Boot,
        Phrase::MountNid,
        Phrase::EcNodeInfo,
        Phrase::SysctlValues,
        Phrase::SettingFlag,
        Phrase::LnetQuiesce,
        Phrase::BmcHeartbeat,
        Phrase::ApicTimer,
        Phrase::NscdReconnect,
        Phrase::Ext4Mounted,
        Phrase::SlurmLaunch,
        Phrase::LustreConnected,
    ];
    const C2: &[Phrase] = &[
        Phrase::BmcHeartbeat,
        Phrase::ApicTimer,
        Phrase::NscdReconnect,
        Phrase::Ext4Mounted,
        Phrase::SlurmLaunch,
        Phrase::LnetQuiesce,
        Phrase::SettingFlag,
        Phrase::MountNid,
        Phrase::SysctlValues,
        Phrase::EcNodeInfo,
    ];
    const C3: &[Phrase] = &[
        Phrase::SlurmLaunch,
        Phrase::Ext4Mounted,
        Phrase::LustreConnected,
        Phrase::LnetQuiesce,
        Phrase::BmcHeartbeat,
        Phrase::ApicTimer,
        Phrase::SettingFlag,
        Phrase::NscdReconnect,
    ];
    [C1, C2, C3]
}

/// Phrases emitted on every node of a cabinet during a maintenance
/// shutdown, oldest first with offsets before the reboot completes.
/// These are *intentional* shutdowns: the ground truth records no failure
/// and the terminal set does not match [`Phrase::SystemHalted`].
pub fn maintenance_sequence() -> Vec<(f64, Phrase)> {
    vec![
        (120.0, Phrase::LlmrdShutdown),
        (90.0, Phrase::SlurmdStopped),
        (60.0, Phrase::StopNmi),
        (45.0, Phrase::SystemHalted),
        (10.0, Phrase::Wait4Boot),
        (0.0, Phrase::MountNid),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_samples_valid_chains() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for class in FailureClass::ALL {
            for _ in 0..50 {
                let c = sample_chain(class, &mut rng);
                assert!(c.events.len() >= 3, "{class:?} chain too short");
                // Strictly decreasing offsets, terminal at zero.
                for w in c.events.windows(2) {
                    assert!(w[0].0 > w[1].0, "{class:?}: offsets not decreasing: {:?}", c.events);
                }
                assert_eq!(c.events.last().unwrap().0, 0.0);
                assert!(c.events.last().unwrap().1.is_failure_terminal());
            }
        }
    }

    #[test]
    fn lead_times_track_table7() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for class in FailureClass::ALL {
            let mean: f64 = (0..400)
                .map(|_| sample_chain(class, &mut rng).lead_secs())
                .sum::<f64>()
                / 400.0;
            let target = class.paper_lead_secs();
            assert!(
                (mean - target).abs() < target * 0.15,
                "{class:?}: sampled mean {mean:.1}s vs paper {target:.1}s"
            );
        }
    }

    #[test]
    fn class_ordering_matches_paper() {
        // Panic shortest, MCE longest (Table 7 / Figure 6).
        let leads: Vec<f64> = FailureClass::ALL.iter().map(|c| c.paper_lead_secs()).collect();
        let panic = FailureClass::Panic.paper_lead_secs();
        let mce = FailureClass::Mce.paper_lead_secs();
        assert!(leads.iter().all(|&l| l >= panic));
        assert!(leads.iter().all(|&l| l <= mce));
    }

    #[test]
    fn near_miss_never_contains_terminal() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..300 {
            let nm = sample_near_miss(&mut rng);
            assert!(!nm.events.is_empty());
            for (_, p) in &nm.events {
                assert!(!p.is_failure_terminal(), "{}: terminal in near miss", nm.name);
            }
            for w in nm.events.windows(2) {
                assert!(w[0].0 > w[1].0, "offsets not decreasing");
            }
        }
    }

    #[test]
    fn near_miss_shares_prefix_phrases_with_chains() {
        // The confounders must overlap chain vocabularies, otherwise they
        // exert no false-positive pressure.
        use std::collections::HashSet;
        let chain_phrases: HashSet<Phrase> = SCENARIOS
            .iter()
            .flat_map(|s| s.steps.iter().map(|st| st.phrase))
            .collect();
        for nm in &NEAR_MISSES {
            let overlap = nm.steps.iter().filter(|s| chain_phrases.contains(&s.phrase)).count();
            assert!(overlap >= 1, "{} shares no phrases with any chain", nm.name);
        }
    }

    #[test]
    fn maintenance_ends_with_reboot_markers() {
        let seq = maintenance_sequence();
        assert!(seq.iter().any(|(_, p)| *p == Phrase::SystemHalted));
        assert!(!seq.iter().any(|(_, p)| p.is_failure_terminal()));
        for w in seq.windows(2) {
            assert!(w[0].0 > w[1].0);
        }
    }

    #[test]
    fn chain_sampling_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(9);
        let mut b = Xoshiro256pp::seed_from_u64(9);
        for class in FailureClass::ALL {
            let ca = sample_chain(class, &mut a);
            let cb = sample_chain(class, &mut b);
            assert_eq!(ca.events.len(), cb.events.len());
            for (x, y) in ca.events.iter().zip(&cb.events) {
                assert_eq!(x.1, y.1);
                assert!((x.0 - y.0).abs() < 1e-12);
            }
        }
    }
}
