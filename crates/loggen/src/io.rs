//! Log file I/O: persist generated datasets as raw syslog-style text and
//! stream them back.
//!
//! This is the boundary a real deployment has — log files on disk — and it
//! is what lets every other crate prove it works from text rather than
//! from the generator's in-memory structures. Buffered throughout (one
//! syscall per block, not per line).

use crate::generator::{Dataset, GroundTruthFailure};
use crate::nodeid::NodeId;
use crate::record::LogRecord;
use crate::scenario::FailureClass;
use desh_util::Micros;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Write a dataset's records as raw lines. Returns the number of lines.
pub fn write_log_file(path: &Path, dataset: &Dataset) -> std::io::Result<usize> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    // Header comments carry the metadata a raw syslog would not; readers
    // skip `#` lines.
    writeln!(out, "# system: {}", dataset.system)?;
    writeln!(out, "# nodes: {}", dataset.nodes)?;
    writeln!(out, "# duration_us: {}", dataset.duration.0)?;
    let mut n = 0usize;
    for r in &dataset.records {
        writeln!(out, "{}", r.to_raw_line())?;
        n += 1;
    }
    out.flush()?;
    Ok(n)
}

/// Write the ground truth (for evaluation) as a sidecar file.
pub fn write_truth_file(path: &Path, failures: &[GroundTruthFailure]) -> std::io::Result<()> {
    let mut out = BufWriter::new(std::fs::File::create(path)?);
    for f in failures {
        writeln!(out, "{} {} {}", f.time.0, f.node, f.class.name())?;
    }
    out.flush()
}

/// Read raw log lines back into records. Unparseable lines are returned
/// separately — a reader must not abort on a corrupt line.
///
/// The clock column wraps at 24 h (syslogs carry no date), so for datasets
/// longer than a day the absolute offset is reconstructed monotonically:
/// whenever the wall clock runs backwards relative to the previous line,
/// a day boundary was crossed. This is exact for the sorted streams
/// [`write_log_file`] produces.
pub fn read_log_file(path: &Path) -> std::io::Result<(Vec<LogRecord>, Vec<String>)> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut records: Vec<LogRecord> = Vec::new();
    let mut bad = Vec::new();
    let mut line = String::new();
    let mut reader = reader;
    let mut day_offset: u64 = 0;
    let mut prev_clock: Option<u64> = None;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match trimmed.parse::<LogRecord>() {
            Ok(mut r) => {
                let clock = r.time.0; // parse_clock is always < 1 day
                if let Some(prev) = prev_clock {
                    if clock < prev {
                        day_offset += desh_util::time::MICROS_PER_DAY;
                    }
                }
                prev_clock = Some(clock);
                r.time = Micros(clock + day_offset);
                records.push(r);
            }
            Err(_) => bad.push(trimmed.to_string()),
        }
    }
    Ok((records, bad))
}

/// Read a ground-truth sidecar file.
pub fn read_truth_file(path: &Path) -> std::io::Result<Vec<GroundTruthFailure>> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        let (Some(t), Some(n), Some(c)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let Ok(time) = t.parse::<u64>() else { continue };
        let Ok(node) = n.parse::<NodeId>() else { continue };
        let Some(class) = FailureClass::ALL.iter().find(|fc| fc.name() == c) else {
            continue;
        };
        out.push(GroundTruthFailure { node, time: Micros(time), class: *class });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::profile::SystemProfile;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("desh-io-{}-{name}", std::process::id()))
    }

    #[test]
    fn log_file_round_trip() {
        let d = generate(&SystemProfile::tiny(), 51);
        let path = tmp("roundtrip.log");
        let n = write_log_file(&path, &d).unwrap();
        assert_eq!(n, d.records.len());
        let (records, bad) = read_log_file(&path).unwrap();
        assert!(bad.is_empty());
        assert_eq!(records.len(), d.records.len());
        // Clock wraps at 24h, so compare the rendered form.
        for (a, b) in records.iter().zip(&d.records) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.text, b.text);
            assert_eq!(a.time.as_clock(), b.time.as_clock());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_lines_are_isolated() {
        let d = generate(&SystemProfile::tiny(), 52);
        let path = tmp("corrupt.log");
        write_log_file(&path, &d).unwrap();
        // Append junk.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(f, "@@@ totally not a log line").unwrap();
        writeln!(f, "another bad one").unwrap();
        drop(f);
        let (records, bad) = read_log_file(&path).unwrap();
        assert_eq!(records.len(), d.records.len());
        assert_eq!(bad.len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn multi_day_round_trip_reconstructs_absolute_times() {
        // M-profiles span 48h: the raw clock wraps once, and the reader
        // must reconstruct absolute offsets exactly.
        let d = generate(&SystemProfile::m4(), 54);
        assert!(d.records.last().unwrap().time.0 > desh_util::time::MICROS_PER_DAY);
        let path = tmp("multiday.log");
        write_log_file(&path, &d).unwrap();
        let (records, bad) = read_log_file(&path).unwrap();
        assert!(bad.is_empty());
        assert_eq!(records.len(), d.records.len());
        for (a, b) in records.iter().zip(&d.records) {
            assert_eq!(a.time, b.time, "absolute time lost for {}", b.text);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truth_file_round_trip() {
        let d = generate(&SystemProfile::tiny(), 53);
        let path = tmp("truth.txt");
        write_truth_file(&path, &d.failures).unwrap();
        let back = read_truth_file(&path).unwrap();
        assert_eq!(back.len(), d.failures.len());
        for (a, b) in back.iter().zip(&d.failures) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.time, b.time);
            assert_eq!(a.class, b.class);
        }
        std::fs::remove_file(path).ok();
    }
}
