//! System profiles M1-M4 mirroring Table 1 of the paper.
//!
//! The paper's datasets are 22-373 GB of production Cray logs over 8-12
//! months from clusters of 1,872-5,600 nodes. Those logs are proprietary,
//! so each profile here pairs the *paper's* metadata (kept for Table 1
//! regeneration) with a scaled-down synthetic workload that preserves the
//! statistical structure that matters to Desh: the failure-class mix, the
//! near-miss confounder pressure, and the benign-noise floor.
//!
//! The class mixes implement the paper's §4.2 observation that "M2 features
//! more node failures caused by Hardware and Filesystem classes and fewer
//! kernel panics", which is why M2 shows the longest average lead time in
//! Figure 7.

use crate::scenario::FailureClass;
use desh_util::{time::MICROS_PER_HOUR, Micros};

/// Workload description for one synthetic system.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// System name (M1..M4).
    pub name: String,
    /// Cray machine type from Table 1.
    pub machine: &'static str,
    /// Paper metadata for Table 1: dataset duration.
    pub paper_duration: &'static str,
    /// Paper metadata for Table 1: dataset size.
    pub paper_size: &'static str,
    /// Paper metadata for Table 1: cluster scale in nodes.
    pub paper_scale: usize,

    /// Synthetic cluster size (scaled down from `paper_scale`).
    pub nodes: usize,
    /// Synthetic dataset duration.
    pub duration: Micros,
    /// Number of anomalous node failures to inject.
    pub failures: usize,
    /// Class mix over [Job, MCE, FileSystem, Traps, H/W, Panic]; sums to 1.
    pub class_mix: [f64; 6],
    /// Near-miss episodes injected per failure.
    pub near_miss_ratio: f64,
    /// Benign (Safe-phrase) events per node-hour.
    pub noise_per_node_hour: f64,
    /// Cabinet-wide maintenance shutdowns over the dataset.
    pub maintenance_events: usize,
    /// Fraction of failures whose chain is a *novel* variant (mutated
    /// ordering plus a foreign phrase). The paper notes "new patterns or
    /// unknown failures are rare" — rare, not absent; these bound recall.
    pub novelty: f64,
    /// Probability that a failure lands in the same cabinet as the
    /// previous failure, modelling the spatial correlation Gupta et al.
    /// report (failure correlation higher within a cabinet than a blade).
    /// The M1-M4 profiles keep this at 0 so the headline experiments match
    /// the paper protocol; spatial studies can turn it up.
    pub cabinet_correlation: f64,
}

impl SystemProfile {
    /// Weight of a class in this profile's mix.
    pub fn class_weight(&self, class: FailureClass) -> f64 {
        let idx = FailureClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class in ALL");
        self.class_mix[idx]
    }

    /// Scale the synthetic workload (nodes, failures, noise volume) by a
    /// factor, keeping mixes intact. Benches use this for size sweeps.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.nodes = ((self.nodes as f64 * factor).round() as usize).max(4);
        self.failures = ((self.failures as f64 * factor).round() as usize).max(4);
        self
    }

    /// M1: Cray XC30, balanced mix, slightly panic-heavy (the paper notes
    /// M1 has the highest FP rate).
    pub fn m1() -> Self {
        Self {
            name: "M1".into(),
            machine: "Cray XC30",
            paper_duration: "10 months",
            paper_size: "373GB",
            paper_scale: 5600,
            nodes: 128,
            duration: Micros(48 * MICROS_PER_HOUR),
            failures: 160,
            class_mix: [0.12, 0.22, 0.20, 0.13, 0.15, 0.18],
            near_miss_ratio: 1.6,
            noise_per_node_hour: 5.0,
            maintenance_events: 2,
            novelty: 0.12,
            cabinet_correlation: 0.0,
        }
    }

    /// M2: Cray XE6; more Hardware + FileSystem failures, fewer panics,
    /// hence the longest lead times (Figure 7).
    pub fn m2() -> Self {
        Self {
            name: "M2".into(),
            machine: "Cray XE6",
            paper_duration: "12 months",
            paper_size: "150GB",
            paper_scale: 6400,
            nodes: 144,
            duration: Micros(48 * MICROS_PER_HOUR),
            failures: 170,
            class_mix: [0.08, 0.16, 0.28, 0.09, 0.30, 0.09],
            near_miss_ratio: 1.4,
            noise_per_node_hour: 5.0,
            maintenance_events: 2,
            novelty: 0.12,
            cabinet_correlation: 0.0,
        }
    }

    /// M3: Cray XC40, balanced.
    pub fn m3() -> Self {
        Self {
            name: "M3".into(),
            machine: "Cray XC40",
            paper_duration: "8 months",
            paper_size: "39GB",
            paper_scale: 2100,
            nodes: 96,
            duration: Micros(48 * MICROS_PER_HOUR),
            failures: 130,
            class_mix: [0.15, 0.20, 0.18, 0.15, 0.14, 0.18],
            near_miss_ratio: 1.5,
            noise_per_node_hour: 5.0,
            maintenance_events: 1,
            novelty: 0.12,
            cabinet_correlation: 0.0,
        }
    }

    /// M4: Cray XC40/XC30, panic-heavy (shortest lead times).
    pub fn m4() -> Self {
        Self {
            name: "M4".into(),
            machine: "Cray XC40/XC30",
            paper_duration: "10 months",
            paper_size: "22GB",
            paper_scale: 1872,
            nodes: 88,
            duration: Micros(48 * MICROS_PER_HOUR),
            failures: 120,
            class_mix: [0.10, 0.18, 0.20, 0.12, 0.16, 0.24],
            near_miss_ratio: 1.7,
            noise_per_node_hour: 5.0,
            maintenance_events: 1,
            novelty: 0.12,
            cabinet_correlation: 0.0,
        }
    }

    /// All four paper systems.
    pub fn all() -> Vec<Self> {
        vec![Self::m1(), Self::m2(), Self::m3(), Self::m4()]
    }

    /// A tiny profile for unit tests: small cluster, short span, but the
    /// same structure as the real profiles.
    pub fn tiny() -> Self {
        Self {
            name: "tiny".into(),
            machine: "Cray XC40",
            paper_duration: "-",
            paper_size: "-",
            paper_scale: 0,
            nodes: 12,
            duration: Micros(6 * MICROS_PER_HOUR),
            failures: 12,
            class_mix: [0.15, 0.2, 0.2, 0.15, 0.15, 0.15],
            near_miss_ratio: 1.0,
            noise_per_node_hour: 4.0,
            maintenance_events: 1,
            novelty: 0.12,
            cabinet_correlation: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_sum_to_one() {
        for p in SystemProfile::all() {
            let s: f64 = p.class_mix.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{}: mix sums to {s}", p.name);
        }
    }

    #[test]
    fn m2_is_hardware_and_fs_heavy() {
        let m2 = SystemProfile::m2();
        let hw_fs = m2.class_weight(FailureClass::Hardware) + m2.class_weight(FailureClass::FileSystem);
        let panic = m2.class_weight(FailureClass::Panic);
        for other in [SystemProfile::m1(), SystemProfile::m3(), SystemProfile::m4()] {
            let o_hw_fs = other.class_weight(FailureClass::Hardware)
                + other.class_weight(FailureClass::FileSystem);
            assert!(hw_fs > o_hw_fs, "M2 should lead in H/W+FS vs {}", other.name);
            assert!(panic < other.class_weight(FailureClass::Panic));
        }
    }

    #[test]
    fn table1_metadata_matches_paper() {
        let all = SystemProfile::all();
        assert_eq!(all[0].paper_size, "373GB");
        assert_eq!(all[1].paper_scale, 6400);
        assert_eq!(all[2].paper_duration, "8 months");
        assert_eq!(all[3].machine, "Cray XC40/XC30");
    }

    #[test]
    fn scaled_preserves_mix() {
        let p = SystemProfile::m1().scaled(0.5);
        assert_eq!(p.nodes, 64);
        assert_eq!(p.failures, 80);
        let s: f64 = p.class_mix.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
