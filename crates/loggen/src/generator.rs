//! The dataset generator: turns a [`SystemProfile`] into a time-sorted
//! stream of raw log records plus the expert ground truth Desh evaluates
//! against.
//!
//! Composition of a generated dataset:
//!
//! 1. **Failure chains** — per injected failure, a class is drawn from the
//!    profile mix and a [`crate::scenario::sample_chain`] instance is laid
//!    down ending at the terminal time. The ground truth records
//!    (node, terminal time, class).
//! 2. **Near misses** — anomalous episodes that do not fail
//!    (`near_miss_ratio` per failure).
//! 3. **Benign noise** — Poisson background of Safe phrases on every node.
//! 4. **Unknown-phrase background** — extra out-of-chain appearances of
//!    the Table 8 phrases, injected so that each phrase's fraction of
//!    appearances inside failure chains matches the paper's reported
//!    contribution percentages (Figure 9).
//! 5. **Maintenance shutdowns** — cabinet-wide intentional reboots that a
//!    correct pipeline must *not* count as node failures.

use crate::nodeid::{Cluster, NodeId};
use crate::phrases::{Label, Phrase};
use crate::profile::SystemProfile;
use crate::record::LogRecord;
use crate::scenario::{maintenance_sequence, sample_chain, sample_near_miss_with, FailureClass};
use desh_util::{Micros, Xoshiro256pp};
use std::collections::HashMap;

/// Ground truth for one injected anomalous node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruthFailure {
    /// Failing node.
    pub node: NodeId,
    /// Time of the terminal message.
    pub time: Micros,
    /// Injected failure class.
    pub class: FailureClass,
}

/// A generated dataset: records sorted by time plus ground truth.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Originating profile name (M1..M4).
    pub system: String,
    /// Cluster size.
    pub nodes: usize,
    /// Dataset span.
    pub duration: Micros,
    /// Time-sorted log records.
    pub records: Vec<LogRecord>,
    /// Injected failures, sorted by time.
    pub failures: Vec<GroundTruthFailure>,
}

impl Dataset {
    /// Split chronologically: the first `train_frac` of the time span (and
    /// its records/failures) becomes the training set, the rest the test
    /// set. The paper uses a 30%/70% split (§4).
    pub fn split_by_time(&self, train_frac: f64) -> (Dataset, Dataset) {
        assert!((0.0..1.0).contains(&train_frac));
        let cut = Micros((self.duration.0 as f64 * train_frac) as u64);
        let part = |keep: &dyn Fn(Micros) -> bool, tag: &str| Dataset {
            system: format!("{}/{tag}", self.system),
            nodes: self.nodes,
            duration: self.duration,
            records: self.records.iter().filter(|r| keep(r.time)).cloned().collect(),
            failures: self.failures.iter().filter(|f| keep(f.time)).copied().collect(),
        };
        (
            part(&|t| t < cut, "train"),
            part(&|t| t >= cut, "test"),
        )
    }

    /// All records as raw text lines (what a real deployment would ingest).
    pub fn raw_lines(&self) -> Vec<String> {
        self.records.iter().map(|r| r.to_raw_line()).collect()
    }

    /// Records grouped per node, preserving time order.
    pub fn by_node(&self) -> HashMap<NodeId, Vec<&LogRecord>> {
        let mut map: HashMap<NodeId, Vec<&LogRecord>> = HashMap::new();
        for r in &self.records {
            map.entry(r.node).or_default().push(r);
        }
        map
    }
}

/// Mutate a chain into a *novel* variant: swap one adjacent pre-terminal
/// pair and splice in a foreign Unknown phrase at an interpolated offset.
/// The terminal stays put — it is still a real failure, just one whose
/// pattern training has not seen.
fn mutate_chain(chain: &mut crate::scenario::ChainInstance, rng: &mut Xoshiro256pp) {
    let n = chain.events.len();
    if n >= 3 {
        // Swap the phrases (not the offsets) of an adjacent pre-terminal pair.
        let i = rng.index(n - 2);
        let (pa, pb) = (chain.events[i].1, chain.events[i + 1].1);
        chain.events[i].1 = pb;
        chain.events[i + 1].1 = pa;
    }
    // Cross-class contamination: hardware faults trigger software errors
    // and vice versa (the paper cites Gainaru et al. on exactly this), so a
    // novel chain borrows a phrase from a *different* class's vocabulary.
    // Deliberately none of these appear in the near-miss catalog, so novelty
    // raises false negatives without teaching the model the confounders.
    const FOREIGN: [Phrase; 5] = [
        Phrase::Segfault,
        Phrase::MceNotifyIrq,
        Phrase::LnetCritHw,
        Phrase::HwerrProto,
        Phrase::SlurmAbort,
    ];
    let pos = 1 + rng.index(n.saturating_sub(2).max(1));
    let hi = chain.events[pos - 1].0;
    let lo = chain.events.get(pos).map(|e| e.0).unwrap_or(0.0);
    let offset = lo + (hi - lo) * 0.5;
    chain
        .events
        .insert(pos, (offset, FOREIGN[rng.index(FOREIGN.len())]));
}

/// Deterministically generate a dataset for a profile.
pub fn generate(profile: &SystemProfile, seed: u64) -> Dataset {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xDE5B_0001);
    let cluster = Cluster::with_nodes(profile.nodes);
    let span = profile.duration;
    let mut records: Vec<LogRecord> = Vec::new();
    let mut failures: Vec<GroundTruthFailure> = Vec::new();
    // Chain-membership counts for the Table 8 calibration pass.
    let mut in_chain: HashMap<Phrase, usize> = HashMap::new();
    let mut out_chain: HashMap<Phrase, usize> = HashMap::new();

    // --- 1. Failure chains -------------------------------------------------
    let mut last_failure_at: HashMap<NodeId, Micros> = HashMap::new();
    let mut last_cabinet: Option<u8> = None;
    let min_gap = Micros::from_mins(30);
    for _ in 0..profile.failures {
        let class = FailureClass::ALL[rng.weighted(&profile.class_mix)];
        // Pick a node + terminal time with a minimum per-node spacing so
        // chains never interleave on one node. With cabinet correlation,
        // prefer the cabinet of the previous failure.
        let (node, terminal) = loop {
            // Guard on the knob before drawing so profiles with zero
            // correlation keep the exact RNG stream (and thus datasets) of
            // the uncorrelated generator.
            let node = match last_cabinet {
                Some(cab)
                    if profile.cabinet_correlation > 0.0
                        && rng.chance(profile.cabinet_correlation) => {
                    let peers: Vec<NodeId> = cluster
                        .nodes()
                        .iter()
                        .copied()
                        .filter(|n| n.cab_x == cab)
                        .collect();
                    *rng.pick(&peers)
                }
                _ => cluster.node(rng.index(cluster.len())),
            };
            let t = Micros(rng.range_u64(span.0 / 50, span.0 - span.0 / 100));
            let ok = last_failure_at
                .get(&node)
                .map(|prev| t.abs_diff(*prev) > min_gap)
                .unwrap_or(true);
            if ok {
                break (node, t);
            }
        };
        last_failure_at.insert(node, terminal);
        last_cabinet = Some(node.cab_x);
        let mut chain = sample_chain(class, &mut rng);
        if rng.chance(profile.novelty) {
            mutate_chain(&mut chain, &mut rng);
        }
        for (before_secs, phrase) in &chain.events {
            let t = terminal.saturating_sub(Micros::from_secs_f64(*before_secs));
            records.push(LogRecord::new(t, node, phrase.render(&mut rng)));
            if phrase.label() == Label::Unknown {
                *in_chain.entry(*phrase).or_default() += 1;
            }
        }
        failures.push(GroundTruthFailure { node, time: terminal, class });
    }

    // --- 2. Near misses ----------------------------------------------------
    // Out-of-chain appearances of Table 8 phrases are budgeted so that the
    // in-chain fraction matches the paper's contribution percentages; the
    // budget not consumed here is emitted as isolated background (step 4).
    let mut out_budget: HashMap<Phrase, i64> = Phrase::table8()
        .iter()
        .map(|(p, pct)| {
            let n_in = *in_chain.get(p).unwrap_or(&0) as f64;
            (*p, (n_in * (100.0 - pct) / pct).round() as i64)
        })
        .collect();
    let n_near = (profile.failures as f64 * profile.near_miss_ratio).round() as usize;
    for _ in 0..n_near {
        let node = cluster.node(rng.index(cluster.len()));
        let end = Micros(rng.range_u64(span.0 / 50, span.0 - 1));
        let nm = sample_near_miss_with(&mut rng, |p| match out_budget.get_mut(&p) {
            Some(b) if *b <= 0 => false,
            Some(b) => {
                *b -= 1;
                true
            }
            None => true,
        });
        for (before_secs, phrase) in &nm.events {
            let t = end.saturating_sub(Micros::from_secs_f64(*before_secs));
            records.push(LogRecord::new(t, node, phrase.render(&mut rng)));
            if phrase.label() == Label::Unknown {
                *out_chain.entry(*phrase).or_default() += 1;
            }
        }
    }

    // --- 3. Benign noise ---------------------------------------------------
    // Routine traffic is *structured*: each node walks one of the benign
    // routine cycles with occasional out-of-cycle singles. This is what
    // makes next-phrase prediction (phase 1) meaningful, exactly as on
    // real systems whose logs are dominated by periodic health checks.
    let safe_phrases: Vec<Phrase> = Phrase::ALL
        .iter()
        .copied()
        .filter(|p| p.label() == Label::Safe)
        .collect();
    let cycles = crate::scenario::routine_cycles();
    let hours = span.0 as f64 / desh_util::time::MICROS_PER_HOUR as f64;
    let rate_per_us = profile.noise_per_node_hour / desh_util::time::MICROS_PER_HOUR as f64;
    for (idx, node) in cluster.nodes().iter().enumerate() {
        let cycle = cycles[idx % cycles.len()];
        let mut pos = rng.index(cycle.len());
        let _ = hours;
        let mut t = rng.exponential(rate_per_us);
        while (t as u64) < span.0 {
            let phrase = if rng.chance(0.04) {
                // Out-of-cycle single (does not advance the routine).
                *rng.pick(&safe_phrases)
            } else {
                let p = cycle[pos];
                pos = (pos + 1) % cycle.len();
                p
            };
            records.push(LogRecord::new(Micros(t as u64), *node, phrase.render(&mut rng)));
            t += rng.exponential(rate_per_us);
        }
    }

    // --- 4. Table 8 calibration -------------------------------------------
    // For each Table 8 phrase with contribution c%, total out-of-chain
    // appearances should be n_in * (100 - c) / c. Near misses already
    // contributed some; inject the remainder as isolated background events.
    for (phrase, pct) in Phrase::table8() {
        let n_in = *in_chain.get(&phrase).unwrap_or(&0);
        if n_in == 0 {
            continue;
        }
        let target_out = (n_in as f64 * (100.0 - pct) / pct).round() as usize;
        let existing = *out_chain.get(&phrase).unwrap_or(&0);
        for _ in existing..target_out {
            let node = cluster.node(rng.index(cluster.len()));
            let t = Micros(rng.below(span.0));
            records.push(LogRecord::new(t, node, phrase.render(&mut rng)));
        }
    }

    // --- 5. Maintenance ----------------------------------------------------
    for _ in 0..profile.maintenance_events {
        let cab = rng.index(cluster.cabinets()) as u8;
        let end = Micros(rng.range_u64(span.0 / 10, span.0 - 1));
        for node in cluster.nodes().iter().filter(|n| n.cab_x == cab) {
            for (before_secs, phrase) in maintenance_sequence() {
                // Small per-node skew so the mass reboot is not perfectly
                // synchronous (it never is in real logs).
                let skew = rng.f64() * 5.0;
                let t = end.saturating_sub(Micros::from_secs_f64(before_secs + skew));
                records.push(LogRecord::new(t, *node, phrase.render(&mut rng)));
            }
        }
    }

    records.sort_by(|a, b| a.time.cmp(&b.time).then_with(|| a.node.cmp(&b.node)));
    failures.sort_by_key(|f| f.time);

    Dataset {
        system: profile.name.clone(),
        nodes: profile.nodes,
        duration: span,
        records,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset(seed: u64) -> Dataset {
        generate(&SystemProfile::tiny(), seed)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_dataset(42);
        let b = tiny_dataset(42);
        assert_eq!(a.records, b.records);
        assert_eq!(a.failures, b.failures);
        let c = tiny_dataset(43);
        assert_ne!(a.records.len(), 0);
        assert!(a.records != c.records, "different seeds must differ");
    }

    #[test]
    fn records_are_time_sorted() {
        let d = tiny_dataset(1);
        for w in d.records.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn ground_truth_failures_have_terminal_records() {
        let d = tiny_dataset(2);
        assert_eq!(d.failures.len(), SystemProfile::tiny().failures);
        for f in &d.failures {
            // A terminal phrase must exist on that node at that time.
            let hit = d.records.iter().any(|r| {
                r.node == f.node
                    && r.time == f.time
                    && (r.text.starts_with("cb_node_unavailable")
                        || r.text.starts_with("WARNING: Node"))
            });
            assert!(hit, "missing terminal record for {f:?}");
        }
    }

    #[test]
    fn every_failure_class_appears_in_big_runs() {
        let d = generate(&SystemProfile::m1(), 7);
        for class in FailureClass::ALL {
            assert!(
                d.failures.iter().any(|f| f.class == class),
                "{class:?} never sampled"
            );
        }
    }

    #[test]
    fn split_respects_time_and_conservation() {
        let d = tiny_dataset(3);
        let (train, test) = d.split_by_time(0.3);
        assert_eq!(train.records.len() + test.records.len(), d.records.len());
        assert_eq!(train.failures.len() + test.failures.len(), d.failures.len());
        let cut = Micros((d.duration.0 as f64 * 0.3) as u64);
        assert!(train.records.iter().all(|r| r.time < cut));
        assert!(test.records.iter().all(|r| r.time >= cut));
    }

    #[test]
    fn maintenance_does_not_create_ground_truth_failures() {
        let mut p = SystemProfile::tiny();
        p.failures = 0;
        p.near_miss_ratio = 0.0;
        p.maintenance_events = 2;
        let d = generate(&p, 4);
        assert!(d.failures.is_empty());
        // Maintenance leaves System: halted lines but no anomalous terminals.
        assert!(d.records.iter().any(|r| r.text.starts_with("System: halted")));
        assert!(!d.records.iter().any(|r| r.text.starts_with("cb_node_unavailable")));
    }

    #[test]
    fn benign_noise_dominates_volume() {
        let d = generate(&SystemProfile::m3(), 5);
        let safe = d
            .records
            .iter()
            .filter(|r| {
                Phrase::ALL.iter().any(|p| {
                    p.label() == Label::Safe
                        && r.text.starts_with(
                            &p.spec().template[..p.spec().template.find("{}").unwrap_or(p.spec().template.len())],
                        )
                })
            })
            .count();
        assert!(
            safe * 2 > d.records.len(),
            "safe noise should be the majority: {safe}/{}",
            d.records.len()
        );
    }

    #[test]
    fn table8_contributions_roughly_match() {
        // Generate a larger dataset and verify the calibration pass puts
        // each Table 8 phrase's in-chain share near the paper value.
        let d = generate(&SystemProfile::m1(), 11);
        // Count appearances inside chains vs total, by static prefix match.
        let mut in_chain: HashMap<&'static str, usize> = HashMap::new();
        let mut total: HashMap<&'static str, usize> = HashMap::new();
        // Build per-node failure windows.
        let mut windows: HashMap<NodeId, Vec<(Micros, Micros)>> = HashMap::new();
        for f in &d.failures {
            windows
                .entry(f.node)
                .or_default()
                .push((f.time.saturating_sub(Micros::from_mins(6)), f.time));
        }
        for (phrase, _) in Phrase::table8() {
            let tmpl = phrase.spec().template;
            let prefix = &tmpl[..tmpl.find("{}").unwrap_or(tmpl.len())];
            for r in &d.records {
                if r.text.starts_with(prefix) {
                    *total.entry(phrase.spec().name).or_default() += 1;
                    if let Some(ws) = windows.get(&r.node) {
                        if ws.iter().any(|(lo, hi)| r.time >= *lo && r.time <= *hi) {
                            *in_chain.entry(phrase.spec().name).or_default() += 1;
                        }
                    }
                }
            }
        }
        for (phrase, pct) in Phrase::table8() {
            let name = phrase.spec().name;
            let t = *total.get(name).unwrap_or(&0);
            if t < 10 {
                continue; // too rare in this seed to assert a ratio
            }
            let i = *in_chain.get(name).unwrap_or(&0);
            let measured = 100.0 * i as f64 / t as f64;
            assert!(
                (measured - pct).abs() < 18.0,
                "{name}: measured contribution {measured:.1}% vs paper {pct}%"
            );
        }
    }
}

#[cfg(test)]
mod spatial_tests {
    use super::*;

    #[test]
    fn cabinet_correlation_concentrates_failures() {
        let mut p = SystemProfile::m1();
        p.nodes = 576; // 3 cabinets: correlation needs somewhere to go
        p.cabinet_correlation = 0.8;
        let d = generate(&p, 61);
        // Count consecutive failures sharing a cabinet.
        let mut same = 0usize;
        for w in d.failures.windows(2) {
            if w[0].node.cab_x == w[1].node.cab_x {
                same += 1;
            }
        }
        // Failures are sorted by time while correlation is applied in
        // generation order, so the effect shows up as a *concentrated
        // marginal* cabinet distribution. Compare against an uncorrelated
        // control on the same seed.
        let frac = same as f64 / (d.failures.len() - 1) as f64;
        let mut control_profile = p.clone();
        control_profile.cabinet_correlation = 0.0;
        let control = generate(&control_profile, 61);
        let mut control_same = 0usize;
        for w in control.failures.windows(2) {
            if w[0].node.cab_x == w[1].node.cab_x {
                control_same += 1;
            }
        }
        let control_frac = control_same as f64 / (control.failures.len() - 1) as f64;
        assert!(
            frac > control_frac + 0.04,
            "correlated fraction {frac:.2} vs control {control_frac:.2}"
        );
    }

    #[test]
    fn zero_correlation_spreads_failures() {
        let mut p = SystemProfile::m1();
        p.nodes = 576;
        let d = generate(&p, 62);
        let mut cabs = std::collections::HashSet::new();
        for f in &d.failures {
            cabs.insert(f.node.cab_x);
        }
        assert!(cabs.len() > 1, "failures confined to one cabinet");
    }
}
