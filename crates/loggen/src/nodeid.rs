//! Cray-style node identifiers and cluster topology.
//!
//! The paper (§4.5): "The node id (e.g., cA-BcCsSnN) contains the exact
//! location information (cabinet: AB, chassis: C, blade: S, number: N)."
//! A Cray XC cabinet holds 3 chassis, each chassis 16 blades, each blade
//! 4 compute nodes — 192 nodes per cabinet.

use std::fmt;
use std::str::FromStr;

/// Chassis per cabinet on a Cray XC.
pub const CHASSIS_PER_CABINET: u8 = 3;
/// Blade slots per chassis.
pub const SLOTS_PER_CHASSIS: u8 = 16;
/// Nodes per blade.
pub const NODES_PER_SLOT: u8 = 4;
/// Nodes per cabinet.
pub const NODES_PER_CABINET: usize =
    CHASSIS_PER_CABINET as usize * SLOTS_PER_CHASSIS as usize * NODES_PER_SLOT as usize;

/// Physical location of one compute node: `c{X}-{Y}c{C}s{S}n{N}`.
///
/// ```
/// use desh_loggen::NodeId;
/// let id: NodeId = "c1-0c2s5n3".parse().unwrap();
/// assert_eq!(id.cab_x, 1);
/// assert_eq!(id.chassis, 2);
/// assert_eq!(id.to_string(), "c1-0c2s5n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Cabinet column.
    pub cab_x: u8,
    /// Cabinet row.
    pub cab_y: u8,
    /// Chassis within the cabinet (0..3).
    pub chassis: u8,
    /// Blade slot within the chassis (0..16).
    pub slot: u8,
    /// Node on the blade (0..4).
    pub node: u8,
}

impl NodeId {
    /// Construct, validating topology bounds.
    pub fn new(cab_x: u8, cab_y: u8, chassis: u8, slot: u8, node: u8) -> Self {
        assert!(chassis < CHASSIS_PER_CABINET, "chassis {chassis} out of range");
        assert!(slot < SLOTS_PER_CHASSIS, "slot {slot} out of range");
        assert!(node < NODES_PER_SLOT, "node {node} out of range");
        Self { cab_x, cab_y, chassis, slot, node }
    }

    /// Largest dense index addressable in a single cabinet row
    /// (256 cabinets of 192 nodes).
    pub const MAX_INDEX: usize = 256 * NODES_PER_CABINET;

    /// The `idx`-th node of a cluster laid out cabinet-by-cabinet in a
    /// single row of cabinets.
    pub fn from_index(idx: usize) -> Self {
        assert!(idx < Self::MAX_INDEX, "node index {idx} exceeds a cabinet row");
        let cab = idx / NODES_PER_CABINET;
        let within = idx % NODES_PER_CABINET;
        let per_chassis = SLOTS_PER_CHASSIS as usize * NODES_PER_SLOT as usize;
        let chassis = within / per_chassis;
        let within_ch = within % per_chassis;
        let slot = within_ch / NODES_PER_SLOT as usize;
        let node = within_ch % NODES_PER_SLOT as usize;
        Self::new(cab as u8, 0, chassis as u8, slot as u8, node as u8)
    }

    /// Inverse of [`Self::from_index`] for single-row clusters.
    pub fn to_index(self) -> usize {
        let per_chassis = SLOTS_PER_CHASSIS as usize * NODES_PER_SLOT as usize;
        self.cab_x as usize * NODES_PER_CABINET
            + self.chassis as usize * per_chassis
            + self.slot as usize * NODES_PER_SLOT as usize
            + self.node as usize
    }

    /// True when two nodes share a cabinet (the paper cites higher failure
    /// correlation within a cabinet than within a blade).
    pub fn same_cabinet(self, other: NodeId) -> bool {
        self.cab_x == other.cab_x && self.cab_y == other.cab_y
    }

    /// True when two nodes share a blade.
    pub fn same_blade(self, other: NodeId) -> bool {
        self.same_cabinet(other) && self.chassis == other.chassis && self.slot == other.slot
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{}-{}c{}s{}n{}",
            self.cab_x, self.cab_y, self.chassis, self.slot, self.node
        )
    }
}

/// Error parsing a node id string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNodeIdError(pub String);

impl fmt::Display for ParseNodeIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid node id: {}", self.0)
    }
}

impl std::error::Error for ParseNodeIdError {}

impl FromStr for NodeId {
    type Err = ParseNodeIdError;

    /// Parse `c0-0c1s4n2`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseNodeIdError(s.to_string());
        let rest = s.strip_prefix('c').ok_or_else(err)?;
        let (cx, rest) = rest.split_once('-').ok_or_else(err)?;
        let (cy, rest) = rest.split_once('c').ok_or_else(err)?;
        let (ch, rest) = rest.split_once('s').ok_or_else(err)?;
        let (sl, nd) = rest.split_once('n').ok_or_else(err)?;
        let cab_x: u8 = cx.parse().map_err(|_| err())?;
        let cab_y: u8 = cy.parse().map_err(|_| err())?;
        let chassis: u8 = ch.parse().map_err(|_| err())?;
        let slot: u8 = sl.parse().map_err(|_| err())?;
        let node: u8 = nd.parse().map_err(|_| err())?;
        if chassis >= CHASSIS_PER_CABINET || slot >= SLOTS_PER_CHASSIS || node >= NODES_PER_SLOT {
            return Err(err());
        }
        Ok(NodeId { cab_x, cab_y, chassis, slot, node })
    }
}

/// A cluster: the set of node ids participating in a generated dataset.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<NodeId>,
}

impl Cluster {
    /// Cluster of `n` nodes packed into cabinets.
    pub fn with_nodes(n: usize) -> Self {
        assert!(n > 0);
        Self { nodes: (0..n).map(NodeId::from_index).collect() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the cluster is empty (never for constructed clusters).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Node by dense index.
    pub fn node(&self, idx: usize) -> NodeId {
        self.nodes[idx]
    }

    /// Number of cabinets spanned.
    pub fn cabinets(&self) -> usize {
        self.nodes.len().div_ceil(NODES_PER_CABINET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_format() {
        let id = NodeId::new(1, 0, 1, 1, 0);
        assert_eq!(id.to_string(), "c1-0c1s1n0");
        let id2 = NodeId::new(4, 0, 0, 0, 2);
        assert_eq!(id2.to_string(), "c4-0c0s0n2");
    }

    #[test]
    fn parse_round_trip() {
        for idx in [0usize, 1, 63, 191, 192, 500] {
            let id = NodeId::from_index(idx);
            let parsed: NodeId = id.to_string().parse().unwrap();
            assert_eq!(parsed, id);
            assert_eq!(id.to_index(), idx);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "c1-0", "x1-0c1s1n0", "c1-0c9s1n0", "c1-0c1s99n0", "c1-0c1s1n9", "c1-0c1s1n"] {
            assert!(bad.parse::<NodeId>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn index_layout_is_dense_and_unique() {
        let c = Cluster::with_nodes(400);
        assert_eq!(c.len(), 400);
        let mut seen = std::collections::HashSet::new();
        for n in c.nodes() {
            assert!(seen.insert(*n), "duplicate node id {n}");
        }
        assert_eq!(c.cabinets(), 3); // 400 nodes -> 3 cabinets of 192
    }

    #[test]
    fn spatial_predicates() {
        let a = NodeId::new(0, 0, 1, 5, 0);
        let b = NodeId::new(0, 0, 1, 5, 3);
        let c = NodeId::new(0, 0, 2, 5, 0);
        let d = NodeId::new(1, 0, 1, 5, 0);
        assert!(a.same_blade(b));
        assert!(a.same_cabinet(c));
        assert!(!a.same_blade(c));
        assert!(!a.same_cabinet(d));
    }

    #[test]
    #[should_panic]
    fn new_validates_bounds() {
        NodeId::new(0, 0, 3, 0, 0);
    }
}
