//! `desh-loggen`: a synthetic Cray-style HPC system-log generator.
//!
//! The Desh paper evaluates on 22-373 GB of proprietary production logs from
//! four Cray systems (Table 1). Those logs cannot be redistributed, so this
//! crate synthesises datasets that preserve the statistical structure Desh
//! learns from:
//!
//! * a cluster of nodes with Cray topology ids ([`nodeid`]),
//! * failure chains per Table 7 class with the paper's per-class lead-time
//!   distributions ([`scenario`]),
//! * near-miss confounders (anomalous phrases that never fail — Table 9),
//! * benign background chatter, Table 8-calibrated unknown-phrase
//!   background, and cabinet-wide maintenance shutdowns ([`generator`]),
//! * per-system workload profiles M1-M4 ([`profile`]).
//!
//! Everything is deterministic per seed, and the output is *raw text lines*
//! — the parsing substrate consumes the same unstructured representation a
//! production deployment would.

pub mod builder;
pub mod generator;
pub mod io;
pub mod nodeid;
pub mod phrases;
pub mod profile;
pub mod record;
pub mod scenario;

pub use builder::{synthesize, CustomScenario, ScenarioBuilder};
pub use generator::{generate, Dataset, GroundTruthFailure};
pub use nodeid::{Cluster, NodeId};
pub use phrases::{Label, Phrase};
pub use profile::SystemProfile;
pub use record::LogRecord;
pub use scenario::FailureClass;
