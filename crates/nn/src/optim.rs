//! Optimizers: SGD (phase 1) and RMSprop (phases 2/3), per Table 5.
//! Adam is included for the ablation benches.

use crate::mat::Mat;
use crate::param::Param;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of non-finite gradient values caught (and zeroed)
/// by optimizer steps. See [`nonfinite_grad_count`].
static NONFINITE_GRADS: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide count of NaN/Inf gradient values the optimizers
/// have zeroed before stepping. A healthy run stays at 0 forever; the
/// divergence watchdog samples it per epoch and treats any growth as a
/// divergence signal.
pub fn nonfinite_grad_count() -> u64 {
    NONFINITE_GRADS.load(Ordering::Relaxed)
}

/// Zero non-finite gradient values in place so one NaN cannot poison a
/// whole weight matrix through the update rule, counting what was caught
/// into [`nonfinite_grad_count`]. Returns this call's catch count.
fn sanitize_grads(params: &mut [&mut Param]) -> u64 {
    let mut bad = 0u64;
    for p in params.iter_mut() {
        for g in p.g.data_mut() {
            if !g.is_finite() {
                *g = 0.0;
                bad += 1;
            }
        }
    }
    if bad > 0 {
        NONFINITE_GRADS.fetch_add(bad, Ordering::Relaxed);
    }
    bad
}

/// A first-order optimizer stepping a fixed, ordered parameter set.
/// State is keyed by position, so the caller must always pass parameters
/// in the same order (models yield them deterministically).
pub trait Optimizer {
    /// Apply one update from the accumulated gradients, then zero them.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Adjust the learning rate (simple decay schedules live in callers).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Mat>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum));
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        sanitize_grads(params);
        if self.velocity.is_empty() && self.momentum > 0.0 {
            self.velocity = params
                .iter()
                .map(|p| Mat::zeros(p.w.rows(), p.w.cols()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                v.scale(self.momentum);
                v.axpy(1.0, &p.g);
                p.w.axpy(-self.lr, v);
            } else {
                let g = p.g.clone();
                p.w.axpy(-self.lr, &g);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSprop (Tieleman & Hinton): per-weight learning rates from a moving
/// average of squared gradients. The paper pairs it with the MSE loss in
/// phases 2 and 3.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    decay: f32,
    eps: f32,
    cache: Vec<Mat>,
}

impl RmsProp {
    /// Standard configuration (decay 0.9, eps 1e-8).
    pub fn new(lr: f32) -> Self {
        Self::with_params(lr, 0.9, 1e-8)
    }

    /// Fully specified.
    pub fn with_params(lr: f32, decay: f32, eps: f32) -> Self {
        assert!((0.0..1.0).contains(&decay));
        Self {
            lr,
            decay,
            eps,
            cache: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [&mut Param]) {
        sanitize_grads(params);
        if self.cache.is_empty() {
            self.cache = params
                .iter()
                .map(|p| Mat::zeros(p.w.rows(), p.w.cols()))
                .collect();
        }
        assert_eq!(self.cache.len(), params.len(), "parameter set changed size");
        for (i, p) in params.iter_mut().enumerate() {
            let cache = &mut self.cache[i];
            for j in 0..p.w.data().len() {
                let g = p.g.data()[j];
                let c = self.decay * cache.data()[j] + (1.0 - self.decay) * g * g;
                cache.data_mut()[j] = c;
                p.w.data_mut()[j] -= self.lr * g / (c.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba). Not used by the paper's pipeline, but kept for the
/// optimizer ablation bench.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Mat>,
    v: Vec<Mat>,
}

impl Adam {
    /// Standard configuration (0.9 / 0.999 / 1e-8).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        sanitize_grads(params);
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Mat::zeros(p.w.rows(), p.w.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            for j in 0..p.w.data().len() {
                let g = p.g.data()[j];
                let m = self.beta1 * self.m[i].data()[j] + (1.0 - self.beta1) * g;
                let v = self.beta2 * self.v[i].data()[j] + (1.0 - self.beta2) * g * g;
                self.m[i].data_mut()[j] = m;
                self.v[i].data_mut()[j] = v;
                let mhat = m / b1t;
                let vhat = v / b2t;
                p.w.data_mut()[j] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(w) = (w - 3)^2 with each optimizer; all must converge.
    fn run(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = Param::zeros("w", 1, 1);
        for _ in 0..steps {
            let w = p.w.data()[0];
            p.g.data_mut()[0] = 2.0 * (w - 3.0);
            opt.step(&mut [&mut p]);
        }
        p.w.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = run(&mut Sgd::new(0.1), 200);
        assert!((w - 3.0).abs() < 1e-3, "w={w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let w = run(&mut Sgd::with_momentum(0.05, 0.9), 300);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let w = run(&mut RmsProp::new(0.05), 500);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = run(&mut Adam::new(0.1), 500);
        assert!((w - 3.0).abs() < 1e-2, "w={w}");
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = Param::zeros("w", 2, 2);
        p.g.data_mut().copy_from_slice(&[1.0, 1.0, 1.0, 1.0]);
        Sgd::new(0.1).step(&mut [&mut p]);
        assert!(p.g.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn rmsprop_adapts_per_weight() {
        // Two weights with very different gradient magnitudes should move
        // by comparable amounts under RMSprop (unlike SGD).
        let mut p = Param::zeros("w", 1, 2);
        let mut opt = RmsProp::new(0.01);
        for _ in 0..10 {
            p.g.data_mut()[0] = 100.0;
            p.g.data_mut()[1] = 0.01;
            opt.step(&mut [&mut p]);
        }
        let moved0 = p.w.data()[0].abs();
        let moved1 = p.w.data()[1].abs();
        assert!(moved0 > 0.0 && moved1 > 0.0);
        let ratio = moved0 / moved1;
        assert!(
            ratio < 10.0,
            "RMSprop should normalise magnitudes, ratio {ratio}"
        );
    }

    #[test]
    fn poisoned_gradient_is_counted_and_neutralised() {
        // A NaN/Inf gradient must not reach the weights: the step zeroes
        // the poisoned entries, applies the finite ones, and bumps the
        // process-wide counter the divergence watchdog reads.
        for opt in [
            &mut Sgd::with_momentum(0.1, 0.9) as &mut dyn Optimizer,
            &mut RmsProp::new(0.1),
            &mut Adam::new(0.1),
        ] {
            let before = nonfinite_grad_count();
            let mut p = Param::zeros("w", 1, 3);
            p.w.data_mut().copy_from_slice(&[1.0, 2.0, 3.0]);
            p.g.data_mut()
                .copy_from_slice(&[f32::NAN, f32::INFINITY, 0.5]);
            opt.step(&mut [&mut p]);
            assert!(
                p.w.data().iter().all(|x| x.is_finite()),
                "weights poisoned: {:?}",
                p.w.data()
            );
            // Poisoned entries got a zero gradient, so their weights are
            // untouched; the finite entry still trained.
            assert_eq!(p.w.data()[0], 1.0);
            assert_eq!(p.w.data()[1], 2.0);
            assert_ne!(p.w.data()[2], 3.0);
            assert_eq!(nonfinite_grad_count() - before, 2);
        }
    }

    #[test]
    fn learning_rate_accessors() {
        let mut s = Sgd::new(0.5);
        assert_eq!(s.learning_rate(), 0.5);
        s.set_learning_rate(0.25);
        assert_eq!(s.learning_rate(), 0.25);
    }
}
