//! Data-parallel training support: fixed-count gradient shards combined
//! with a deterministic tree reduction.
//!
//! The invariant the whole design hangs on: **numerics depend only on the
//! shard count, never on the thread count**. Every minibatch is split into
//! [`shard_count`] shards (a fixed count, default [`DEFAULT_SHARDS`],
//! overridable once per process with `DESH_SHARDS`); each shard
//! accumulates gradients into its own [`GradSet`] using the *full-batch*
//! loss denominator (`loss::softmax_xent_denom` / `loss::mse_denom`), so
//! the sum over shards equals the one-shot batch gradient up to FP
//! summation order; and the per-shard sets are summed in the fixed binary
//! tree of [`tree_reduce_indices`] — the same pairing the rayon shim's
//! `tree_fold` uses. How many OS threads execute the shards
//! (`DESH_THREADS` / `rayon::set_thread_override`) decides wall-clock
//! only: a 1-thread and an 8-thread run of the same seed produce
//! bit-identical weights.

use crate::mat::Mat;
use crate::param::Param;
use std::ops::Range;
use std::sync::OnceLock;

/// Default fixed shard count when `DESH_SHARDS` is unset. Chosen so a
/// 4-core box still has 2 shards per worker to smooth load imbalance,
/// while per-shard minibatch slices stay large enough for the GEMM
/// kernels to matter.
pub const DEFAULT_SHARDS: usize = 8;

/// The fixed shard count gradient work is split into. Read once per
/// process from `DESH_SHARDS` (positive integer), else
/// [`DEFAULT_SHARDS`]. Changing this changes FP summation order and thus
/// exact bits — changing thread counts does not.
pub fn shard_count() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("DESH_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_SHARDS)
    })
}

/// A flat set of gradient buffers mirroring a model's parameter order.
#[derive(Debug, Clone)]
pub struct GradSet {
    mats: Vec<Mat>,
}

impl GradSet {
    /// Zeroed buffers shaped like each parameter, in the given order.
    pub fn zeros_like(params: &[&Param]) -> Self {
        Self {
            mats: params
                .iter()
                .map(|p| Mat::zeros(p.w.rows(), p.w.cols()))
                .collect(),
        }
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True when the set holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// The buffers, in parameter order.
    pub fn mats(&self) -> &[Mat] {
        &self.mats
    }

    /// Mutable buffers, in parameter order.
    pub fn mats_mut(&mut self) -> &mut [Mat] {
        &mut self.mats
    }

    /// Zero every buffer in place, keeping allocations.
    pub fn clear(&mut self) {
        for m in &mut self.mats {
            m.clear();
        }
    }

    /// Elementwise add another set into this one (one tree-reduce merge).
    pub fn add_assign(&mut self, other: &GradSet) {
        assert_eq!(self.mats.len(), other.mats.len(), "grad set size mismatch");
        for (a, b) in self.mats.iter_mut().zip(&other.mats) {
            a.add_assign(b);
        }
    }

    /// Add the buffers into the parameters' accumulated gradients (`.g`),
    /// in order. The optimizer then consumes `.g` exactly as in the
    /// sequential path.
    pub fn apply_to(&self, params: &mut [&mut Param]) {
        assert_eq!(self.mats.len(), params.len(), "param count mismatch");
        for (p, g) in params.iter_mut().zip(&self.mats) {
            p.g.add_assign(g);
        }
    }
}

/// Visit the fixed binary reduction tree over `n` slots: `combine(dst,
/// src)` is called for each pair merge, always with `dst < src`, in a
/// deterministic stride-doubling order — (0,1),(2,3),…, then (0,2),(4,6),…
/// — leaving the total in slot 0. This is the same combination tree as
/// the rayon shim's `tree_fold`, so in-place reductions here and
/// value-passing reductions there agree bit-for-bit.
pub fn tree_reduce_indices(n: usize, mut combine: impl FnMut(usize, usize)) {
    let mut stride = 1;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            combine(i, i + stride);
            i += 2 * stride;
        }
        stride *= 2;
    }
}

/// Contiguous per-shard row ranges for `items` work items over `shards`
/// slots (ceil-divided; trailing shards may be empty). Contiguity keeps
/// each shard's minibatch slice a single block, and the fixed shard count
/// keeps the split — and therefore the numerics — thread-independent.
pub fn shard_ranges(items: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.max(1);
    let per = items.div_ceil(shards).max(1);
    (0..shards)
        .map(|s| {
            let lo = (s * per).min(items);
            let hi = ((s + 1) * per).min(items);
            lo..hi
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_matches_shim_tree_fold_pairing() {
        // Symbolic check: with 5 slots the merges must be (0,1),(2,3),
        // (0,2),(0,4) — the in-place form of (((01)(23))4).
        let mut merges = Vec::new();
        tree_reduce_indices(5, |d, s| merges.push((d, s)));
        assert_eq!(merges, vec![(0, 1), (2, 3), (0, 2), (0, 4)]);
        // And slot 0 accumulates everything exactly once.
        let mut slots: Vec<Vec<usize>> = (0..7).map(|i| vec![i]).collect();
        tree_reduce_indices(7, |d, s| {
            let moved = std::mem::take(&mut slots[s]);
            slots[d].extend(moved);
        });
        let mut total = slots[0].clone();
        total.sort_unstable();
        assert_eq!(total, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn tree_reduce_trivial_sizes() {
        let mut calls = 0;
        tree_reduce_indices(0, |_, _| calls += 1);
        tree_reduce_indices(1, |_, _| calls += 1);
        assert_eq!(calls, 0);
        let mut merges = Vec::new();
        tree_reduce_indices(2, |d, s| merges.push((d, s)));
        assert_eq!(merges, vec![(0, 1)]);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for items in [0usize, 1, 5, 8, 9, 64, 100] {
            for shards in [1usize, 2, 8] {
                let rs = shard_ranges(items, shards);
                assert_eq!(rs.len(), shards);
                let mut covered = 0;
                let mut next = 0;
                for r in &rs {
                    assert!(r.start <= r.end);
                    if !r.is_empty() {
                        assert_eq!(r.start, next, "items={items} shards={shards}");
                        next = r.end;
                    }
                    covered += r.len();
                }
                assert_eq!(covered, items, "items={items} shards={shards}");
            }
        }
    }

    #[test]
    fn grad_set_roundtrip() {
        let mut p1 = Param::zeros("a", 2, 3);
        let mut p2 = Param::zeros("b", 1, 4);
        let mut gs = GradSet::zeros_like(&[&p1, &p2]);
        assert_eq!(gs.len(), 2);
        gs.mats_mut()[0].data_mut()[0] = 1.5;
        gs.mats_mut()[1].data_mut()[3] = -2.0;
        let mut other = gs.clone();
        other.add_assign(&gs);
        assert_eq!(other.mats()[0].data()[0], 3.0);
        {
            let mut params = vec![&mut p1, &mut p2];
            other.apply_to(&mut params);
        }
        assert_eq!(p1.g.data()[0], 3.0);
        assert_eq!(p2.g.data()[3], -4.0);
        other.clear();
        assert!(other
            .mats()
            .iter()
            .all(|m| m.data().iter().all(|&x| x == 0.0)));
    }
}
