//! Skip-gram word embeddings with negative sampling (Mikolov et al.), the
//! "traditional skip-gram model" the paper uses to vectorize encoded
//! phrases (§3.1).
//!
//! The paper's detail we reproduce faithfully: the context window is
//! **asymmetric** — 8 phrases to the left and 3 to the right of the target
//! ("window sizes of 8 and 3 are used, respectively, to consider the number
//! of phrases left and right of a specific target phrase").

use crate::act::sigmoid;
use crate::mat::Mat;
use crate::observe::{NoopObserver, ParamStats, TrainObserver};
use crate::parallel::shard_count;
use desh_util::Xoshiro256pp;
use rayon::prelude::*;
use std::time::Instant;

/// Skip-gram hyper-parameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding width.
    pub dim: usize,
    /// Context window to the left of the target (paper: 8).
    pub window_left: usize,
    /// Context window to the right of the target (paper: 3).
    pub window_right: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Learning rate.
    pub lr: f32,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Unigram distribution smoothing exponent for negative sampling
    /// (word2vec's 0.75).
    pub power: f64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window_left: 8,
            window_right: 3,
            negatives: 5,
            lr: 0.05,
            epochs: 5,
            power: 0.75,
        }
    }
}

/// Trainer state: input ("target") and output ("context") tables.
#[derive(Debug, Clone)]
pub struct SkipGram {
    vocab: usize,
    cfg: SgnsConfig,
    w_in: Mat,
    w_out: Mat,
    /// Cumulative unigram^power table for sampling negatives.
    neg_cdf: Vec<f64>,
}

/// One shard's table deltas plus loss accounting for an epoch.
struct EpochDelta {
    d_in: Mat,
    d_out: Mat,
    loss: f64,
    pairs: u64,
}

impl SkipGram {
    /// Initialise from the corpus (needed for the unigram table).
    pub fn new(vocab: usize, seqs: &[Vec<u32>], cfg: SgnsConfig, rng: &mut Xoshiro256pp) -> Self {
        assert!(vocab > 1, "need at least two phrases to embed");
        let mut counts = vec![0u64; vocab];
        for s in seqs {
            for &id in s {
                assert!((id as usize) < vocab, "token {id} out of vocab {vocab}");
                counts[id as usize] += 1;
            }
        }
        let mut neg_cdf = Vec::with_capacity(vocab);
        let mut acc = 0.0f64;
        for &c in &counts {
            // Smooth zero counts slightly so every id is sampleable.
            acc += ((c as f64) + 0.1).powf(cfg.power);
            neg_cdf.push(acc);
        }
        let bound = 0.5 / cfg.dim as f32;
        let w_in = Mat::from_fn(vocab, cfg.dim, |_, _| (rng.f32() * 2.0 - 1.0) * bound);
        let w_out = Mat::zeros(vocab, cfg.dim);
        Self {
            vocab,
            cfg,
            w_in,
            w_out,
            neg_cdf,
        }
    }

    fn sample_negative_from(neg_cdf: &[f64], vocab: usize, rng: &mut Xoshiro256pp) -> u32 {
        let total = *neg_cdf.last().unwrap();
        let x = rng.f64() * total;
        // Binary search the CDF.
        match neg_cdf.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => (i.min(vocab - 1)) as u32,
        }
    }

    /// One (target, context) SGNS update with k negatives, applied to
    /// explicit tables so per-shard private copies can run it without
    /// touching the shared trainer state. Returns the pair's loss.
    #[allow(clippy::too_many_arguments)]
    fn update_pair_tables(
        cfg: &SgnsConfig,
        vocab: usize,
        neg_cdf: &[f64],
        w_in: &mut Mat,
        w_out: &mut Mat,
        target: u32,
        context: u32,
        rng: &mut Xoshiro256pp,
    ) -> f64 {
        let dim = cfg.dim;
        let lr = cfg.lr;
        let mut grad_in = vec![0.0f32; dim];
        let t = target as usize;
        let mut loss = 0.0f64;

        // Positive pair + negatives share the same inner loop.
        let apply = |w_in: &Mat, w_out: &mut Mat, ctx: usize, label: f32| -> (Vec<f32>, f64) {
            let vi = w_in.row(t);
            let vo = w_out.row(ctx);
            let dot: f32 = vi.iter().zip(vo).map(|(a, b)| a * b).sum();
            let p = sigmoid(dot);
            let g = (p - label) * lr;
            let mut gi = vec![0.0f32; dim];
            let loss = if label > 0.5 {
                -(p.max(1e-7) as f64).ln()
            } else {
                -((1.0 - p).max(1e-7) as f64).ln()
            };
            let vo_mut = w_out.row_mut(ctx);
            for k in 0..dim {
                gi[k] = g * vo_mut[k];
                vo_mut[k] -= g * vi[k];
            }
            (gi, loss)
        };

        let (gi, l) = apply(w_in, w_out, context as usize, 1.0);
        for (a, b) in grad_in.iter_mut().zip(&gi) {
            *a += b;
        }
        loss += l;
        for _ in 0..cfg.negatives {
            let mut neg = Self::sample_negative_from(neg_cdf, vocab, rng);
            if neg == context {
                neg = (neg + 1) % vocab as u32;
            }
            let (gi, l) = apply(w_in, w_out, neg as usize, 0.0);
            for (a, b) in grad_in.iter_mut().zip(&gi) {
                *a += b;
            }
            loss += l;
        }
        let vi = w_in.row_mut(t);
        for k in 0..dim {
            vi[k] -= grad_in[k];
        }
        loss
    }

    /// One shard's epoch: sequential SGNS updates on private copies of
    /// both tables, returned as deltas from the epoch-start snapshot.
    fn shard_epoch(&self, shard: &[Vec<u32>], rng: &mut Xoshiro256pp) -> EpochDelta {
        let mut w_in = self.w_in.clone();
        let mut w_out = self.w_out.clone();
        let mut loss = 0.0f64;
        let mut pairs = 0u64;
        for s in shard {
            for (pos, &target) in s.iter().enumerate() {
                let lo = pos.saturating_sub(self.cfg.window_left);
                let hi = (pos + self.cfg.window_right + 1).min(s.len());
                for (ctx_pos, &ctx_tok) in s.iter().enumerate().take(hi).skip(lo) {
                    if ctx_pos == pos {
                        continue;
                    }
                    loss += Self::update_pair_tables(
                        &self.cfg,
                        self.vocab,
                        &self.neg_cdf,
                        &mut w_in,
                        &mut w_out,
                        target,
                        ctx_tok,
                        rng,
                    );
                    pairs += 1;
                }
            }
        }
        // Convert the locally updated tables into deltas in place.
        w_in.axpy(-1.0, &self.w_in);
        w_out.axpy(-1.0, &self.w_out);
        EpochDelta {
            d_in: w_in,
            d_out: w_out,
            loss,
            pairs,
        }
    }

    /// Train on the corpus; returns the mean pair loss per epoch.
    ///
    /// Data-parallel with no Hogwild races: per epoch, the corpus is
    /// split into a fixed number of shards (`parallel::shard_count`),
    /// each shard runs the classic sequential update loop on a private
    /// snapshot of both tables with its own seeded RNG, and the per-shard
    /// deltas are merged in the shim's fixed tree order and applied once.
    /// Shard seeds are drawn from the caller's RNG in shard order, so the
    /// result is deterministic and independent of the thread count.
    pub fn train(&mut self, seqs: &[Vec<u32>], rng: &mut Xoshiro256pp) -> Vec<f64> {
        self.train_observed(seqs, rng, &mut NoopObserver)
    }

    /// [`SkipGram::train`] with a per-epoch [`TrainObserver`] callback.
    ///
    /// The observer gets `on_epoch` per pass and — when it opts in via
    /// `wants_param_stats` — per-table stats where the "gradient" is the
    /// averaged local-SGD delta actually applied that epoch (the learning
    /// rate is already baked into it, so `update_ratio` is simply
    /// delta-norm over table-norm). There is one merge per epoch, so mean
    /// and max gradient norms coincide. `should_stop` is honoured between
    /// epochs; `on_checkpoint` is not offered (tables are cheap to retrain
    /// and the embedding phase has no downstream optimizer state).
    pub fn train_observed(
        &mut self,
        seqs: &[Vec<u32>],
        rng: &mut Xoshiro256pp,
        observer: &mut dyn TrainObserver,
    ) -> Vec<f64> {
        let shards = shard_count();
        let chunk = seqs.len().div_ceil(shards).max(1);
        let n_chunks = if seqs.is_empty() {
            0
        } else {
            seqs.len().div_ceil(chunk)
        };
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            let epoch_start = Instant::now();
            let seeds: Vec<u64> = (0..n_chunks).map(|_| rng.next_u64()).collect();
            let merged = seqs
                .par_chunks(chunk)
                .enumerate()
                .map(|(i, shard)| {
                    let mut shard_rng = Xoshiro256pp::seed_from_u64(seeds[i]);
                    self.shard_epoch(shard, &mut shard_rng)
                })
                .reduce_with(|mut a, b| {
                    a.d_in.add_assign(&b.d_in);
                    a.d_out.add_assign(&b.d_out);
                    a.loss += b.loss;
                    a.pairs += b.pairs;
                    a
                });
            match merged {
                Some(m) => {
                    // Average the shard deltas (equal-sized shards): the
                    // local-SGD merge. Summing instead would scale the
                    // effective learning rate by the shard count and
                    // diverge.
                    let scale = 1.0 / n_chunks as f32;
                    self.w_in.axpy(scale, &m.d_in);
                    self.w_out.axpy(scale, &m.d_out);
                    losses.push(if m.pairs == 0 {
                        0.0
                    } else {
                        m.loss / m.pairs as f64
                    });
                    if observer.wants_param_stats() {
                        let stats = [
                            Self::table_stats("sgns.w_in", &self.w_in, &m.d_in, scale),
                            Self::table_stats("sgns.w_out", &self.w_out, &m.d_out, scale),
                        ];
                        observer.on_param_stats(epoch, &stats);
                    }
                }
                None => losses.push(0.0),
            }
            observer.on_epoch(epoch, *losses.last().unwrap(), epoch_start.elapsed());
            if observer.should_stop() {
                break;
            }
        }
        losses
    }

    /// Per-table stats for one epoch: the applied update is `scale *
    /// delta`, whose L2 norm stands in for the gradient norm (the lr is
    /// inside the delta already, hence `update_ratio` has no lr factor).
    fn table_stats(name: &str, table: &Mat, delta: &Mat, scale: f32) -> ParamStats {
        let mut sq = 0.0f64;
        let mut bad = 0u64;
        for &x in delta.data() {
            if x.is_finite() {
                let d = f64::from(x) * f64::from(scale);
                sq += d * d;
            } else {
                bad += 1;
            }
        }
        let delta_norm = sq.sqrt();
        let weight_norm = table.sq_norm().sqrt();
        ParamStats {
            name: name.to_string(),
            weight_norm,
            grad_norm_mean: delta_norm,
            grad_norm_max: delta_norm,
            update_ratio: if weight_norm > 0.0 {
                delta_norm / weight_norm
            } else {
                0.0
            },
            nonfinite: bad,
        }
    }

    /// The learned input-side table (what downstream models consume).
    pub fn into_table(self) -> Mat {
        self.w_in
    }

    /// Borrow the table without consuming.
    pub fn table(&self) -> &Mat {
        &self.w_in
    }

    /// Cosine similarity of two ids in the learned space.
    pub fn cosine(&self, a: u32, b: u32) -> f32 {
        let va = self.w_in.row(a as usize);
        let vb = self.w_in.row(b as usize);
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus where ids {0,1} always co-occur and {2,3} always co-occur,
    /// with the groups never mixing: embeddings must reflect that.
    fn grouped_corpus(n: usize) -> Vec<Vec<u32>> {
        let mut seqs = Vec::new();
        for i in 0..n {
            if i % 2 == 0 {
                seqs.push(vec![0, 1, 0, 1, 0, 1, 0, 1]);
            } else {
                seqs.push(vec![2, 3, 2, 3, 2, 3, 2, 3]);
            }
        }
        seqs
    }

    #[test]
    fn loss_decreases() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let seqs = grouped_corpus(20);
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 8,
            ..Default::default()
        };
        let mut sg = SkipGram::new(4, &seqs, cfg, &mut rng);
        let losses = sg.train(&seqs, &mut rng);
        assert!(
            losses.last().unwrap() < &losses[0],
            "SGNS loss did not decrease: {losses:?}"
        );
    }

    #[test]
    fn cooccurring_ids_are_closer() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let seqs = grouped_corpus(40);
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 10,
            lr: 0.08,
            ..Default::default()
        };
        let mut sg = SkipGram::new(4, &seqs, cfg, &mut rng);
        sg.train(&seqs, &mut rng);
        let within = sg.cosine(0, 1);
        let across = sg.cosine(0, 2);
        assert!(
            within > across,
            "within-group similarity {within} should exceed across-group {across}"
        );
    }

    #[test]
    fn asymmetric_window_counts_pairs() {
        // With window_left=2, window_right=0 on [a b c], pairs are:
        // b->a, c->b, c->a (3 pairs); verify via loss normalisation not
        // crashing and table shape.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let seqs = vec![vec![0u32, 1, 2]];
        let cfg = SgnsConfig {
            dim: 4,
            window_left: 2,
            window_right: 0,
            epochs: 1,
            ..Default::default()
        };
        let mut sg = SkipGram::new(3, &seqs, cfg, &mut rng);
        let losses = sg.train(&seqs, &mut rng);
        assert_eq!(losses.len(), 1);
        assert!(losses[0] > 0.0);
        assert_eq!(sg.table().shape(), (3, 4));
    }

    #[test]
    fn into_table_has_expected_shape() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let seqs = vec![vec![0u32, 1, 2, 3, 4]];
        let cfg = SgnsConfig {
            dim: 6,
            epochs: 1,
            ..Default::default()
        };
        let mut sg = SkipGram::new(5, &seqs, cfg, &mut rng);
        sg.train(&seqs, &mut rng);
        let table = sg.into_table();
        assert_eq!(table.shape(), (5, 6));
        assert!(table.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_token_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let seqs = vec![vec![0u32, 9]];
        SkipGram::new(3, &seqs, SgnsConfig::default(), &mut rng);
    }
}
