//! Skip-gram word embeddings with negative sampling (Mikolov et al.), the
//! "traditional skip-gram model" the paper uses to vectorize encoded
//! phrases (§3.1).
//!
//! The paper's detail we reproduce faithfully: the context window is
//! **asymmetric** — 8 phrases to the left and 3 to the right of the target
//! ("window sizes of 8 and 3 are used, respectively, to consider the number
//! of phrases left and right of a specific target phrase").

use crate::act::sigmoid;
use crate::mat::Mat;
use desh_util::Xoshiro256pp;

/// Skip-gram hyper-parameters.
#[derive(Debug, Clone)]
pub struct SgnsConfig {
    /// Embedding width.
    pub dim: usize,
    /// Context window to the left of the target (paper: 8).
    pub window_left: usize,
    /// Context window to the right of the target (paper: 3).
    pub window_right: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Learning rate.
    pub lr: f32,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Unigram distribution smoothing exponent for negative sampling
    /// (word2vec's 0.75).
    pub power: f64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            window_left: 8,
            window_right: 3,
            negatives: 5,
            lr: 0.05,
            epochs: 5,
            power: 0.75,
        }
    }
}

/// Trainer state: input ("target") and output ("context") tables.
#[derive(Debug, Clone)]
pub struct SkipGram {
    vocab: usize,
    cfg: SgnsConfig,
    w_in: Mat,
    w_out: Mat,
    /// Cumulative unigram^power table for sampling negatives.
    neg_cdf: Vec<f64>,
}

impl SkipGram {
    /// Initialise from the corpus (needed for the unigram table).
    pub fn new(vocab: usize, seqs: &[Vec<u32>], cfg: SgnsConfig, rng: &mut Xoshiro256pp) -> Self {
        assert!(vocab > 1, "need at least two phrases to embed");
        let mut counts = vec![0u64; vocab];
        for s in seqs {
            for &id in s {
                assert!((id as usize) < vocab, "token {id} out of vocab {vocab}");
                counts[id as usize] += 1;
            }
        }
        let mut neg_cdf = Vec::with_capacity(vocab);
        let mut acc = 0.0f64;
        for &c in &counts {
            // Smooth zero counts slightly so every id is sampleable.
            acc += ((c as f64) + 0.1).powf(cfg.power);
            neg_cdf.push(acc);
        }
        let bound = 0.5 / cfg.dim as f32;
        let w_in = Mat::from_fn(vocab, cfg.dim, |_, _| (rng.f32() * 2.0 - 1.0) * bound);
        let w_out = Mat::zeros(vocab, cfg.dim);
        Self {
            vocab,
            cfg,
            w_in,
            w_out,
            neg_cdf,
        }
    }

    fn sample_negative(&self, rng: &mut Xoshiro256pp) -> u32 {
        let total = *self.neg_cdf.last().unwrap();
        let x = rng.f64() * total;
        // Binary search the CDF.
        match self
            .neg_cdf
            .binary_search_by(|v| v.partial_cmp(&x).unwrap())
        {
            Ok(i) | Err(i) => (i.min(self.vocab - 1)) as u32,
        }
    }

    /// One (target, context) SGNS update with k negatives. Returns the
    /// positive-pair loss contribution.
    fn update_pair(&mut self, target: u32, context: u32, rng: &mut Xoshiro256pp) -> f64 {
        let dim = self.cfg.dim;
        let lr = self.cfg.lr;
        let mut grad_in = vec![0.0f32; dim];
        let t = target as usize;
        let mut loss = 0.0f64;

        // Positive pair + negatives share the same inner loop.
        let apply = |w_in: &Mat, w_out: &mut Mat, ctx: usize, label: f32| -> (Vec<f32>, f64) {
            let vi = w_in.row(t);
            let vo = w_out.row(ctx);
            let dot: f32 = vi.iter().zip(vo).map(|(a, b)| a * b).sum();
            let p = sigmoid(dot);
            let g = (p - label) * lr;
            let mut gi = vec![0.0f32; dim];
            let loss = if label > 0.5 {
                -(p.max(1e-7) as f64).ln()
            } else {
                -((1.0 - p).max(1e-7) as f64).ln()
            };
            let vo_mut = w_out.row_mut(ctx);
            for k in 0..dim {
                gi[k] = g * vo_mut[k];
                vo_mut[k] -= g * vi[k];
            }
            (gi, loss)
        };

        let (gi, l) = apply(&self.w_in, &mut self.w_out, context as usize, 1.0);
        for (a, b) in grad_in.iter_mut().zip(&gi) {
            *a += b;
        }
        loss += l;
        for _ in 0..self.cfg.negatives {
            let mut neg = self.sample_negative(rng);
            if neg == context {
                neg = (neg + 1) % self.vocab as u32;
            }
            let (gi, l) = apply(&self.w_in, &mut self.w_out, neg as usize, 0.0);
            for (a, b) in grad_in.iter_mut().zip(&gi) {
                *a += b;
            }
            loss += l;
        }
        let vi = self.w_in.row_mut(t);
        for k in 0..dim {
            vi[k] -= grad_in[k];
        }
        loss
    }

    /// Train on the corpus; returns the mean pair loss per epoch.
    pub fn train(&mut self, seqs: &[Vec<u32>], rng: &mut Xoshiro256pp) -> Vec<f64> {
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _ in 0..self.cfg.epochs {
            let mut total = 0.0f64;
            let mut pairs = 0u64;
            for s in seqs {
                for (pos, &target) in s.iter().enumerate() {
                    let lo = pos.saturating_sub(self.cfg.window_left);
                    let hi = (pos + self.cfg.window_right + 1).min(s.len());
                    for (ctx_pos, &ctx_tok) in s.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        total += self.update_pair(target, ctx_tok, rng);
                        pairs += 1;
                    }
                }
            }
            losses.push(if pairs == 0 {
                0.0
            } else {
                total / pairs as f64
            });
        }
        losses
    }

    /// The learned input-side table (what downstream models consume).
    pub fn into_table(self) -> Mat {
        self.w_in
    }

    /// Borrow the table without consuming.
    pub fn table(&self) -> &Mat {
        &self.w_in
    }

    /// Cosine similarity of two ids in the learned space.
    pub fn cosine(&self, a: u32, b: u32) -> f32 {
        let va = self.w_in.row(a as usize);
        let vb = self.w_in.row(b as usize);
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Corpus where ids {0,1} always co-occur and {2,3} always co-occur,
    /// with the groups never mixing: embeddings must reflect that.
    fn grouped_corpus(n: usize) -> Vec<Vec<u32>> {
        let mut seqs = Vec::new();
        for i in 0..n {
            if i % 2 == 0 {
                seqs.push(vec![0, 1, 0, 1, 0, 1, 0, 1]);
            } else {
                seqs.push(vec![2, 3, 2, 3, 2, 3, 2, 3]);
            }
        }
        seqs
    }

    #[test]
    fn loss_decreases() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let seqs = grouped_corpus(20);
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 8,
            ..Default::default()
        };
        let mut sg = SkipGram::new(4, &seqs, cfg, &mut rng);
        let losses = sg.train(&seqs, &mut rng);
        assert!(
            losses.last().unwrap() < &losses[0],
            "SGNS loss did not decrease: {losses:?}"
        );
    }

    #[test]
    fn cooccurring_ids_are_closer() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let seqs = grouped_corpus(40);
        let cfg = SgnsConfig {
            dim: 8,
            epochs: 10,
            lr: 0.08,
            ..Default::default()
        };
        let mut sg = SkipGram::new(4, &seqs, cfg, &mut rng);
        sg.train(&seqs, &mut rng);
        let within = sg.cosine(0, 1);
        let across = sg.cosine(0, 2);
        assert!(
            within > across,
            "within-group similarity {within} should exceed across-group {across}"
        );
    }

    #[test]
    fn asymmetric_window_counts_pairs() {
        // With window_left=2, window_right=0 on [a b c], pairs are:
        // b->a, c->b, c->a (3 pairs); verify via loss normalisation not
        // crashing and table shape.
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let seqs = vec![vec![0u32, 1, 2]];
        let cfg = SgnsConfig {
            dim: 4,
            window_left: 2,
            window_right: 0,
            epochs: 1,
            ..Default::default()
        };
        let mut sg = SkipGram::new(3, &seqs, cfg, &mut rng);
        let losses = sg.train(&seqs, &mut rng);
        assert_eq!(losses.len(), 1);
        assert!(losses[0] > 0.0);
        assert_eq!(sg.table().shape(), (3, 4));
    }

    #[test]
    fn into_table_has_expected_shape() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let seqs = vec![vec![0u32, 1, 2, 3, 4]];
        let cfg = SgnsConfig {
            dim: 6,
            epochs: 1,
            ..Default::default()
        };
        let mut sg = SkipGram::new(5, &seqs, cfg, &mut rng);
        sg.train(&seqs, &mut rng);
        let table = sg.into_table();
        assert_eq!(table.shape(), (5, 6));
        assert!(table.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_token_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let seqs = vec![vec![0u32, 9]];
        SkipGram::new(3, &seqs, SgnsConfig::default(), &mut rng);
    }
}
