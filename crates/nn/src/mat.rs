//! Dense row-major f32 matrices with the handful of BLAS-like kernels the
//! LSTM training and inference loops need.
//!
//! The GEMM is a cache-blocked, panel-packed kernel: B is packed into
//! 8-column strips and A into 2-row panels per k-block, and a 2x8
//! register-tiled micro-kernel does the multiply-adds in a shape the
//! compiler auto-vectorizes. Three cheaper paths short-circuit the packed
//! kernel where it would lose:
//!
//! * a **GEMV** path for `[1,k] @ [k,n]` — the shape every batch=1 online
//!   scoring step hits — with a zero-skipping variant for the one-hot
//!   (ΔT, phrase) input rows of phases 2/3;
//! * a **sparse-row axpy** path when A is mostly zeros (one-hot training
//!   batches), which does `nnz` row updates instead of `m*k`;
//! * the plain `ikj` loop for matrices too small to amortise packing.
//!
//! Output-row parallelism via rayon kicks in above [`PAR_FLOP_THRESHOLD`]
//! exactly as before. The innermost loops (dense GEMV sweep, the 2x8
//! micro-kernel, and the contiguous dot) dispatch through [`crate::simd`]:
//! the scalar backend reproduces the historical loops bit-for-bit, while
//! the AVX2/NEON backends use explicit FMA lanes (which reassociate sums
//! within the f64-oracle tolerances the proptests enforce).

use crate::simd;
use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of scalar multiply-adds before a GEMM goes parallel.
/// Below this, rayon's fork/join overhead dominates.
const PAR_FLOP_THRESHOLD: usize = 1 << 17;

/// Below this many multiply-adds the straightforward unpacked loop beats
/// the packed kernel (packing overhead dominates; measured crossover is
/// around the 64³ shape on the baseline x86-64 target).
const PACK_FLOP_THRESHOLD: usize = 1 << 19;

/// Micro-tile rows (register-blocked rows of A per kernel call). Kept at 2
/// deliberately: the 2x8 f32 accumulator needs only 4 SSE registers, so
/// the whole tile stays register-resident on the baseline x86-64 target —
/// a 4x8 tile measurably spills and runs ~2x slower.
pub(crate) const MR: usize = 2;

/// Micro-tile columns; 8-wide so the inner loop maps onto full-width SIMD.
pub(crate) const NR: usize = 8;

/// k-dimension cache block: an `MR x KC` A-panel plus an `NR x KC` B-panel
/// stay L1-resident while the micro-kernel streams over them.
const KC: usize = 256;

// ---------------------------------------------------------------------------
// Free-function kernels (operate on raw slices so `Mat` borrows stay simple)
// ---------------------------------------------------------------------------

/// `out[0..n] += a (row vector, len k) @ B[:, lo..lo+n]` where `b` has row
/// stride `bcols`. Dedicated batch=1 path: no packing, no tiling.
fn gemv_acc(a: &[f32], b: &[f32], bcols: usize, lo: usize, n: usize, out: &mut [f32]) {
    let k = a.len();
    debug_assert!(out.len() >= n);
    let out = &mut out[..n];
    // One-hot-ish rows (the vectorized (ΔT, phrase) inputs of phases 2/3
    // have ~2 non-zeros) pay for a quick scan: the zero-skipping axpy form
    // then does `nnz` row updates instead of `k`.
    let nnz = a.iter().filter(|&&x| x != 0.0).count();
    if nnz * 4 <= k {
        for (kk, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * bcols + lo..kk * bcols + lo + n];
            for (o, &bv) in out.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
        return;
    }
    // Dense row: SIMD-dispatched sweep (4-way k unrolling in the scalar
    // backend, 8-wide FMA lanes under AVX2/NEON).
    simd::gemv_dense_acc(a, b, bcols, lo, n, out);
}

/// Split `R` distinct rows of a row-major buffer into simultaneous `&mut`
/// slices (the fused multi-row GEMV writes them in one pass). Distinctness
/// is asserted — aliasing rows would be UB.
fn disjoint_rows_mut<const R: usize>(
    data: &mut [f32],
    n: usize,
    rows: [usize; R],
) -> [&mut [f32]; R] {
    for i in 0..R {
        assert!((rows[i] + 1) * n <= data.len(), "row out of bounds");
        for j in i + 1..R {
            assert_ne!(rows[i], rows[j], "wave rows must be distinct");
        }
    }
    let p = data.as_mut_ptr();
    // SAFETY: row indices are distinct (asserted above) and in bounds, so
    // the produced slices are non-overlapping views into `data`.
    rows.map(|r| unsafe { std::slice::from_raw_parts_mut(p.add(r * n), n) })
}

/// Contiguous dot product (used by the `A @ Bᵀ` small-shape kernel, where
/// both operands are contiguous rows). Dispatches through [`crate::simd`];
/// the scalar backend is the historical 8-accumulator unrolled loop.
#[inline]
fn dot_unrolled(a: &[f32], b: &[f32]) -> f32 {
    simd::dot(a, b)
}

/// Pack one `kb x n` slab of B (columns `lo..lo+n`, rows `k0..k0+kb`) into
/// NR-wide strips: strip `s` holds rows k-contiguously as
/// `packed[s*KC*NR + kk*NR + j]`, tail strips zero-padded to NR.
fn pack_b(b: &[f32], bcols: usize, lo: usize, n: usize, k0: usize, kb: usize, packed: &mut [f32]) {
    let nstrips = n.div_ceil(NR);
    for s in 0..nstrips {
        let j0 = s * NR;
        let nb = NR.min(n - j0);
        let dst_base = s * KC * NR;
        for kk in 0..kb {
            let src = (k0 + kk) * bcols + lo + j0;
            let dst = dst_base + kk * NR;
            packed[dst..dst + nb].copy_from_slice(&b[src..src + nb]);
            for j in nb..NR {
                packed[dst + j] = 0.0;
            }
        }
    }
}

/// Pack an `mb x kb` block of A (rows `i0..i0+mb`, cols `k0..k0+kb`) into
/// an MR-row panel: `packed[kk*MR + r]`, tail rows zero-padded.
fn pack_a(a: &[f32], k: usize, i0: usize, mb: usize, k0: usize, kb: usize, packed: &mut [f32]) {
    for kk in 0..kb {
        for r in 0..MR {
            packed[kk * MR + r] = if r < mb {
                a[(i0 + r) * k + k0 + kk]
            } else {
                0.0
            };
        }
    }
}

/// The register-tiled micro-kernel: `rows[0..mb][j0..j0+nb] += pa @ pb`
/// where `pa` is an MR-row packed A panel and `pb` an NR-col packed B
/// strip, both `kb` deep. Dispatches through [`crate::simd`]; the MRxNR
/// accumulator lives in registers (2 × `__m256` under AVX2), padded lanes
/// compute on zeros and are simply not written back.
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn microkernel(
    pa: &[f32],
    pb: &[f32],
    kb: usize,
    rows: &mut [f32],
    ldc: usize,
    j0: usize,
    mb: usize,
    nb: usize,
) {
    simd::microkernel_acc(pa, pb, kb, rows, ldc, j0, mb, nb)
}

/// Sparse/small fallback: zero-skipping `ikj` accumulation of
/// `out += A[m,k] @ B[:, lo..lo+n]`, optionally row-parallel.
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn gemm_axpy_acc(
    a: &[f32],
    k: usize,
    b: &[f32],
    bcols: usize,
    lo: usize,
    n: usize,
    out: &mut [f32],
    par: bool,
) {
    let body = |i: usize, orow: &mut [f32]| {
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * bcols + lo..kk * bcols + lo + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if par {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| body(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            body(i, row);
        }
    }
}

/// Cache-blocked panel-packed GEMM:
/// `out[m,n] += A[m,k] @ B[:, lo..lo+n]`, row-parallel when `par`.
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn gemm_packed_acc(
    a: &[f32],
    k: usize,
    b: &[f32],
    bcols: usize,
    lo: usize,
    n: usize,
    out: &mut [f32],
    par: bool,
) {
    let nstrips = n.div_ceil(NR);
    let mut packed_b = vec![0.0f32; KC * nstrips * NR];
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        pack_b(b, bcols, lo, n, k0, kb, &mut packed_b);
        let pb = &packed_b[..];
        // Each task owns an MR-row group of `out`; the A panel is packed
        // on-stack per task so worker threads never share mutable state.
        let body = |rb: usize, rows: &mut [f32]| {
            let i0 = rb * MR;
            let mb = rows.len() / n;
            let mut pa = [0.0f32; MR * KC];
            pack_a(a, k, i0, mb, k0, kb, &mut pa);
            for s in 0..nstrips {
                let j0 = s * NR;
                let nb = NR.min(n - j0);
                microkernel(&pa, &pb[s * KC * NR..], kb, rows, n, j0, mb, nb);
            }
        };
        if par {
            out.par_chunks_mut(MR * n)
                .enumerate()
                .for_each(|(rb, rows)| body(rb, rows));
        } else {
            for (rb, rows) in out.chunks_mut(MR * n).enumerate() {
                body(rb, rows);
            }
        }
        k0 += kb;
    }
}

/// Pack one `kb`-deep slab of Bᵀ into NR-wide strips for the `A @ Bᵀ`
/// kernel: B is `[n,k]` row-major, and strip `s` holds output columns
/// (= B rows) `s*NR..s*NR+NR` k-contiguously as `packed[s*KC*NR + kk*NR +
/// j] = B[s*NR+j, k0+kk]`, tail strips zero-padded. Paying this transpose
/// once per k-block is what lets `matmul_t` reuse the same register-tiled
/// micro-kernel as `matmul` instead of re-walking B rows per output panel.
fn pack_bt(b: &[f32], k: usize, n: usize, k0: usize, kb: usize, packed: &mut [f32]) {
    let nstrips = n.div_ceil(NR);
    for s in 0..nstrips {
        let j0 = s * NR;
        let nb = NR.min(n - j0);
        let dst_base = s * KC * NR;
        for j in 0..nb {
            let src = (j0 + j) * k + k0;
            for kk in 0..kb {
                packed[dst_base + kk * NR + j] = b[src + kk];
            }
        }
        for j in nb..NR {
            for kk in 0..kb {
                packed[dst_base + kk * NR + j] = 0.0;
            }
        }
    }
}

/// Cache-blocked panel-packed `out[m,n] += A[m,k] @ Bᵀ` where B is `[n,k]`
/// row-major. Identical task structure to [`gemm_packed_acc`]; only the B
/// packing differs (transpose-pack via [`pack_bt`]).
fn gemm_t_packed_acc(a: &[f32], k: usize, b: &[f32], n: usize, out: &mut [f32], par: bool) {
    let nstrips = n.div_ceil(NR);
    let mut packed_b = vec![0.0f32; KC * nstrips * NR];
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        pack_bt(b, k, n, k0, kb, &mut packed_b);
        let pb = &packed_b[..];
        let body = |rb: usize, rows: &mut [f32]| {
            let i0 = rb * MR;
            let mb = rows.len() / n;
            let mut pa = [0.0f32; MR * KC];
            pack_a(a, k, i0, mb, k0, kb, &mut pa);
            for s in 0..nstrips {
                let j0 = s * NR;
                let nb = NR.min(n - j0);
                microkernel(&pa, &pb[s * KC * NR..], kb, rows, n, j0, mb, nb);
            }
        };
        if par {
            out.par_chunks_mut(MR * n)
                .enumerate()
                .for_each(|(rb, rows)| body(rb, rows));
        } else {
            for (rb, rows) in out.chunks_mut(MR * n).enumerate() {
                body(rb, rows);
            }
        }
        k0 += kb;
    }
}

/// Dispatching entry point: `out[m,n] += A[m,k] @ B[:, lo..lo+n]`.
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
fn gemm_acc(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    bcols: usize,
    lo: usize,
    n: usize,
    out: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if m == 1 {
        return gemv_acc(a, b, bcols, lo, n, out);
    }
    if n == 1 {
        // k×1 GEMV: one (strided) dot product per output row.
        for (i, o) in out.iter_mut().enumerate() {
            let arow = &a[i * k..(i + 1) * k];
            let mut acc = 0.0f32;
            for (kk, &av) in arow.iter().enumerate() {
                acc += av * b[kk * bcols + lo];
            }
            *o += acc;
        }
        return;
    }
    let work = m * k * n;
    let par = work >= PAR_FLOP_THRESHOLD;
    if work < PACK_FLOP_THRESHOLD {
        return gemm_axpy_acc(a, k, b, bcols, lo, n, out, false);
    }
    // One-hot training batches (phase-2/3 vectorized inputs) are ~2
    // non-zeros per row; the O(mk) scan is negligible next to the GEMM.
    let nnz = a.iter().filter(|&&x| x != 0.0).count();
    if nnz * 8 <= m * k {
        return gemm_axpy_acc(a, k, b, bcols, lo, n, out, par);
    }
    gemm_packed_acc(a, k, b, bcols, lo, n, out, par)
}

/// Row-major 2-D matrix of f32.
///
/// ```
/// use desh_nn::Mat;
/// let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let eye = Mat::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// assert_eq!(a.matmul(&eye), a);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reset all elements to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Reshape in place to `(rows, cols)`, reusing the allocation and
    /// zeroing the contents. Grows the backing vector only when the new
    /// shape needs more elements than ever seen before.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        let len = rows * cols;
        self.data.clear();
        self.data.resize(len, 0.0);
        self.rows = rows;
        self.cols = cols;
    }

    /// `self = self + other`, elementwise.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self = self + alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Mat) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self = self * alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise product into a new matrix.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape());
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a * b)
                .collect(),
        }
    }

    /// Add a 1-row bias to every row.
    pub fn add_row_broadcast(&mut self, bias: &Mat) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Column sums as a 1-row matrix (bias gradient).
    pub fn col_sums(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// `C = A @ B` where A is `self` [m,k], B is [k,n].
    pub fn matmul(&self, b: &Mat) -> Mat {
        assert_eq!(
            self.cols,
            b.rows,
            "matmul shape mismatch {:?} x {:?}",
            self.shape(),
            b.shape()
        );
        let mut out = Mat::zeros(self.rows, b.cols);
        gemm_acc(
            &self.data,
            self.rows,
            self.cols,
            &b.data,
            b.cols,
            0,
            b.cols,
            &mut out.data,
        );
        out
    }

    /// `out = A @ B`, overwriting `out` in place (shape-checked; resized
    /// only when the shape changes). The zero-allocation inference paths
    /// use this to keep gate pre-activations in reusable scratch buffers.
    pub fn matmul_into(&self, b: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, b.rows, "matmul_into shape mismatch");
        if out.shape() != (self.rows, b.cols) {
            out.reset(self.rows, b.cols);
        } else {
            out.clear();
        }
        gemm_acc(
            &self.data,
            self.rows,
            self.cols,
            &b.data,
            b.cols,
            0,
            b.cols,
            &mut out.data,
        );
    }

    /// `out += A @ B`, accumulating in place.
    pub fn matmul_acc(&self, b: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, b.rows, "matmul_acc shape mismatch");
        assert_eq!(out.shape(), (self.rows, b.cols), "matmul_acc output shape");
        gemm_acc(
            &self.data,
            self.rows,
            self.cols,
            &b.data,
            b.cols,
            0,
            b.cols,
            &mut out.data,
        );
    }

    /// `out.row(r) = self.row(r) @ B` through the exact batch=1 GEMV
    /// kernel a one-row [`Mat::matmul_into`] dispatches to. The fleet
    /// batching path steps many independent streams held as rows of one
    /// matrix; routing each row through the single-row kernel keeps every
    /// row bit-identical to the stream's sequential batch=1 history —
    /// the packed multi-row micro-kernel has a different accumulation
    /// order and would break bit-exact capsule replay.
    pub fn matmul_row_into(&self, r: usize, b: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, b.rows, "matmul_row shape mismatch");
        assert_eq!(out.shape(), (self.rows, b.cols), "matmul_row output shape");
        let row = &self.data[r * self.cols..(r + 1) * self.cols];
        let orow = &mut out.data[r * b.cols..(r + 1) * b.cols];
        orow.iter_mut().for_each(|x| *x = 0.0);
        gemv_acc(row, &b.data, b.cols, 0, b.cols, orow);
    }

    /// `out.row(r) += self.row(r) @ B` (accumulating twin of
    /// [`Mat::matmul_row_into`], bit-identical to a one-row
    /// [`Mat::matmul_acc`]).
    pub fn matmul_row_acc(&self, r: usize, b: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, b.rows, "matmul_row shape mismatch");
        assert_eq!(out.shape(), (self.rows, b.cols), "matmul_row output shape");
        let row = &self.data[r * self.cols..(r + 1) * self.cols];
        let orow = &mut out.data[r * b.cols..(r + 1) * b.cols];
        gemv_acc(row, &b.data, b.cols, 0, b.cols, orow);
    }

    /// `out.row(r) = self.row(r) @ B` for every `r` in `rows` — the wave
    /// form of [`Mat::matmul_row_into`]. Each row is dispatched exactly as
    /// the single-row kernel would dispatch it (zero-skipping axpy for
    /// near-one-hot rows, dense sweep otherwise), and dense rows are
    /// grouped four and two at a time into fused kernels that share one
    /// sweep of `B` while folding every output element in the identical
    /// k-ascending order. Every row's result is therefore bit-for-bit
    /// what a per-row loop produces, while the weight traffic for an
    /// R-row wave drops toward 1/R — the fleet batching win. Rows must be
    /// distinct (independent stream slots; the wave cut rule upstream
    /// guarantees it, and the fused groups assert it).
    pub fn matmul_rows_into(&self, rows: &[usize], b: &Mat, out: &mut Mat) {
        self.matmul_rows_impl(rows, b, out, true);
    }

    /// `out.row(r) += self.row(r) @ B` for every `r` in `rows`
    /// (accumulating twin of [`Mat::matmul_rows_into`], bit-identical
    /// per row to [`Mat::matmul_row_acc`]).
    pub fn matmul_rows_acc(&self, rows: &[usize], b: &Mat, out: &mut Mat) {
        self.matmul_rows_impl(rows, b, out, false);
    }

    fn matmul_rows_impl(&self, rows: &[usize], b: &Mat, out: &mut Mat, zero_first: bool) {
        assert_eq!(self.cols, b.rows, "matmul_rows shape mismatch");
        assert_eq!(out.shape(), (self.rows, b.cols), "matmul_rows output shape");
        let k = self.cols;
        let n = b.cols;
        // Dense rows wait in `pend` until a fused group fills; sparse rows
        // are cheap enough that sharing B sweeps buys nothing, so they run
        // immediately through the same axpy form `gemv_acc` picks.
        let mut pend = [0usize; 4];
        let mut np = 0;
        for &r in rows {
            let orow = &mut out.data[r * n..(r + 1) * n];
            if zero_first {
                orow.iter_mut().for_each(|x| *x = 0.0);
            }
            let arow = &self.data[r * k..(r + 1) * k];
            let nnz = arow.iter().filter(|&&x| x != 0.0).count();
            if nnz * 4 <= k {
                for (kk, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b.data[kk * n..kk * n + n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            } else {
                pend[np] = r;
                np += 1;
                if np == 4 {
                    self.flush_dense4([pend[0], pend[1], pend[2], pend[3]], b, out);
                    np = 0;
                }
            }
        }
        match np {
            0 => {}
            1 => self.flush_dense1(pend[0], b, out),
            2 => self.flush_dense2([pend[0], pend[1]], b, out),
            3 => {
                self.flush_dense2([pend[0], pend[1]], b, out);
                self.flush_dense1(pend[2], b, out);
            }
            _ => unreachable!(),
        }
    }

    fn flush_dense1(&self, r: usize, b: &Mat, out: &mut Mat) {
        let n = b.cols;
        let arow = &self.data[r * self.cols..(r + 1) * self.cols];
        let orow = &mut out.data[r * n..(r + 1) * n];
        simd::gemv_dense_acc(arow, &b.data, n, 0, n, orow);
    }

    fn flush_dense2(&self, rows: [usize; 2], b: &Mat, out: &mut Mat) {
        let k = self.cols;
        let n = b.cols;
        let [o0, o1] = disjoint_rows_mut(&mut out.data, n, rows);
        simd::gemv_dense_acc2(
            [
                &self.data[rows[0] * k..(rows[0] + 1) * k],
                &self.data[rows[1] * k..(rows[1] + 1) * k],
            ],
            &b.data,
            n,
            0,
            n,
            [o0, o1],
        );
    }

    fn flush_dense4(&self, rows: [usize; 4], b: &Mat, out: &mut Mat) {
        let k = self.cols;
        let n = b.cols;
        let [o0, o1, o2, o3] = disjoint_rows_mut(&mut out.data, n, rows);
        simd::gemv_dense_acc4(
            [
                &self.data[rows[0] * k..(rows[0] + 1) * k],
                &self.data[rows[1] * k..(rows[1] + 1) * k],
                &self.data[rows[2] * k..(rows[2] + 1) * k],
                &self.data[rows[3] * k..(rows[3] + 1) * k],
            ],
            &b.data,
            n,
            0,
            n,
            [o0, o1, o2, o3],
        );
    }

    /// `self.row(r) += bias.row(0)` — the per-row form of
    /// [`Mat::add_row_broadcast`], element order identical.
    pub fn add_bias_row(&mut self, r: usize, bias: &Mat) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
        for (x, b) in row.iter_mut().zip(&bias.data) {
            *x += b;
        }
    }

    /// `out = A @ B[:, lo..hi]` without materialising the column slice
    /// (the GRU candidate gate multiplies by one third of its fused weight
    /// matrix every step).
    pub fn matmul_cols_into(&self, b: &Mat, lo: usize, hi: usize, out: &mut Mat) {
        assert_eq!(self.cols, b.rows, "matmul_cols shape mismatch");
        assert!(lo <= hi && hi <= b.cols, "column range out of bounds");
        let n = hi - lo;
        if out.shape() != (self.rows, n) {
            out.reset(self.rows, n);
        } else {
            out.clear();
        }
        gemm_acc(
            &self.data,
            self.rows,
            self.cols,
            &b.data,
            b.cols,
            lo,
            n,
            &mut out.data,
        );
    }

    /// `C = Aᵀ @ B` where A is `self` [k,m], B is [k,n]. Used for weight
    /// gradients (`dW = xᵀ dy`) without materialising the transpose. The
    /// zero-skipping axpy form is kept deliberately: one-hot activation
    /// columns make this effectively sparse during training.
    pub fn t_matmul(&self, b: &Mat) -> Mat {
        assert_eq!(self.rows, b.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, b.cols);
        let mut out = Mat::zeros(m, n);
        // out[i,j] = sum_k a[k,i] * b[k,j]; accumulate row-by-row of A/B.
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &b.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        }
        out
    }

    /// `C = A @ Bᵀ` where A is `self` [m,k], B is [n,k]. Used for input
    /// gradients (`dx = dy Wᵀ`). Large shapes transpose-pack B once per
    /// k-block ([`pack_bt`]) and reuse the same register-tiled micro-kernel
    /// as [`Mat::matmul`]; small shapes keep the contiguous-row dot kernel,
    /// where packing overhead would dominate.
    pub fn matmul_t(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, b.rows);
        let mut out = Mat::zeros(m, n);
        let work = m * k * n;
        let par = work >= PAR_FLOP_THRESHOLD;
        if work >= PACK_FLOP_THRESHOLD {
            gemm_t_packed_acc(&self.data, k, &b.data, n, &mut out.data, par);
            return out;
        }
        let body = |r: usize, out_row: &mut [f32]| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b.data[j * k..(j + 1) * k];
                *o = dot_unrolled(a_row, b_row);
            }
        };
        if par {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, row)| body(r, row));
        } else {
            for (r, row) in out.data.chunks_mut(n).enumerate() {
                body(r, row);
            }
        }
        out
    }

    /// Explicit transpose (rarely needed; gradients use the fused kernels).
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Horizontal slice of columns `[lo, hi)` as a new matrix.
    pub fn col_slice(&self, lo: usize, hi: usize) -> Mat {
        assert!(lo <= hi && hi <= self.cols);
        let w = hi - lo;
        let mut out = Mat::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + lo..r * self.cols + hi]);
        }
        out
    }

    /// Stack matrices with identical column counts vertically.
    pub fn vstack(mats: &[&Mat]) -> Mat {
        assert!(!mats.is_empty());
        let cols = mats[0].cols;
        assert!(mats.iter().all(|m| m.cols == cols));
        let rows = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            data.extend_from_slice(&m.data);
        }
        Mat { rows, cols, data }
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn approx_eq(a: &Mat, b: &Mat, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    fn test_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut r = desh_util::Xoshiro256pp::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| r.f32() * 2.0 - 1.0)
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (7, 5, 9), (16, 16, 16)] {
            let a = test_mat(m, k, 1);
            let b = test_mat(k, n, 2);
            approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5);
        }
    }

    #[test]
    fn matmul_packed_path_matches_naive() {
        // Big enough for packing, small enough to stay serial; includes
        // non-multiple-of-tile edges in every dimension.
        for (m, k, n) in [(33, 20, 29), (5, 300, 17), (40, 40, 40)] {
            let a = test_mat(m, k, 3);
            let b = test_mat(k, n, 4);
            approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_large_parallel_path() {
        let a = test_mat(80, 70, 3);
        let b = test_mat(70, 90, 4);
        approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_gemv_paths_match_naive() {
        // 1×k (row GEMV — the online scoring shape) and k×1 (column GEMV).
        for k in [1usize, 3, 8, 65, 300] {
            let a = test_mat(1, k, 5);
            let b = test_mat(k, 37, 6);
            approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
            let c = test_mat(9, k, 7);
            let d = test_mat(k, 1, 8);
            approx_eq(&c.matmul(&d), &naive_matmul(&c, &d), 1e-4);
        }
    }

    #[test]
    fn matmul_sparse_one_hot_rows() {
        // One-hot A rows exercise the zero-skipping paths exactly like the
        // phase-2/3 vectorized inputs.
        let mut a = Mat::zeros(16, 120);
        for r in 0..16 {
            a[(r, (r * 7) % 120)] = 1.0;
            a[(r, 0)] = 0.25;
        }
        let b = test_mat(120, 64, 9);
        approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5);
        let one_row = Mat::from_vec(1, 120, a.row(3).to_vec());
        approx_eq(&one_row.matmul(&b), &naive_matmul(&one_row, &b), 1e-5);
    }

    #[test]
    fn matmul_into_and_acc_reuse_buffers() {
        let a = test_mat(6, 11, 10);
        let b = test_mat(11, 9, 11);
        let c = test_mat(6, 14, 12);
        let d = test_mat(14, 9, 13);
        let mut out = Mat::full(3, 3, 42.0); // wrong shape: must be resized
        a.matmul_into(&b, &mut out);
        approx_eq(&out, &naive_matmul(&a, &b), 1e-5);
        c.matmul_acc(&d, &mut out);
        let mut expect = naive_matmul(&a, &b);
        expect.add_assign(&naive_matmul(&c, &d));
        approx_eq(&out, &expect, 1e-5);
        // Overwrite again: stale contents must not leak through.
        a.matmul_into(&b, &mut out);
        approx_eq(&out, &naive_matmul(&a, &b), 1e-5);
    }

    #[test]
    fn row_matmul_bit_identical_to_single_row_matmul() {
        // The fleet batching path depends on matmul_row_into/_acc producing
        // exactly the bits a 1-row matmul_into/_acc would — for both the
        // dense GEMV sweep and the zero-skipping one-hot branch.
        let k = 120;
        let n = 64;
        let mut a = test_mat(6, k, 20);
        // Rows 0 and 3 one-hot-sparse to hit the zero-skip branch.
        for &r in &[0usize, 3] {
            for v in a.row_mut(r) {
                *v = 0.0;
            }
            a[(r, (r * 13) % k)] = 1.0;
            a[(r, 2)] = 0.5;
        }
        let b = test_mat(k, n, 21);
        let h = test_mat(6, 40, 22);
        let w = test_mat(40, n, 23);
        let bias = test_mat(1, n, 24);

        let mut out = Mat::full(6, n, f32::NAN);
        for r in 0..6 {
            a.matmul_row_into(r, &b, &mut out);
            h.matmul_row_acc(r, &w, &mut out);
            out.add_bias_row(r, &bias);
        }
        for r in 0..6 {
            let a1 = Mat::from_vec(1, k, a.row(r).to_vec());
            let h1 = Mat::from_vec(1, 40, h.row(r).to_vec());
            let mut e = Mat::zeros(1, n);
            a1.matmul_into(&b, &mut e);
            h1.matmul_acc(&w, &mut e);
            e.add_row_broadcast(&bias);
            assert_eq!(
                out.row(r).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                e.row(0).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "row {r} diverged from the 1-row kernel"
            );
        }
    }

    /// The fused wave forms must be bit-identical per row to the per-row
    /// loop they replace, across every grouping the dispatcher can form:
    /// sparse rows interleaved with dense, waves from 1 to 9 rows (quads,
    /// a pair, singles), and both the fused n%64==0 shape and the
    /// fallback shapes.
    #[test]
    fn wave_matmul_bit_identical_to_per_row_loop() {
        for &(k, n) in &[(64usize, 256usize), (40, 64), (33, 50)] {
            let mut a = test_mat(9, k, 30);
            for &r in &[1usize, 4] {
                for v in a.row_mut(r) {
                    *v = 0.0;
                }
                a[(r, (r * 7) % k)] = 1.0;
                a[(r, 1)] = 0.25;
            }
            let b = test_mat(k, n, 31);
            let h = test_mat(9, 48, 32);
            let w = test_mat(48, n, 33);
            for wave in 1..=9usize {
                let rows: Vec<usize> = (0..wave).collect();
                let mut want = Mat::full(9, n, f32::NAN);
                for &r in &rows {
                    a.matmul_row_into(r, &b, &mut want);
                    h.matmul_row_acc(r, &w, &mut want);
                }
                let mut got = Mat::full(9, n, f32::NAN);
                a.matmul_rows_into(&rows, &b, &mut got);
                h.matmul_rows_acc(&rows, &w, &mut got);
                for &r in &rows {
                    assert_eq!(
                        want.row(r).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.row(r).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "wave {wave} row {r} diverged at {k}x{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_cols_into_matches_explicit_slice() {
        let a = test_mat(4, 10, 14);
        let b = test_mat(10, 24, 15);
        let mut out = Mat::zeros(0, 0);
        a.matmul_cols_into(&b, 8, 16, &mut out);
        approx_eq(&out, &naive_matmul(&a, &b.col_slice(8, 16)), 1e-5);
        // Batch=1 GEMV flavour of the same.
        let v = test_mat(1, 10, 16);
        v.matmul_cols_into(&b, 8, 16, &mut out);
        approx_eq(&out, &naive_matmul(&v, &b.col_slice(8, 16)), 1e-5);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = test_mat(6, 4, 5);
        let b = test_mat(6, 7, 6);
        approx_eq(&a.t_matmul(&b), &naive_matmul(&a.transpose(), &b), 1e-5);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = test_mat(5, 8, 7);
        let b = test_mat(9, 8, 8);
        approx_eq(&a.matmul_t(&b), &naive_matmul(&a, &b.transpose()), 1e-5);
        // Also exercise the parallel path.
        let a = test_mat(64, 64, 9);
        let b = test_mat(64, 64, 10);
        approx_eq(&a.matmul_t(&b), &naive_matmul(&a, &b.transpose()), 1e-4);
        // And the transpose-packed path (work >= PACK_FLOP_THRESHOLD),
        // with ragged dimensions so strip/panel tails are covered.
        let a = test_mat(130, 70, 11);
        let b = test_mat(85, 70, 12);
        assert!(a.rows() * a.cols() * b.rows() >= PACK_FLOP_THRESHOLD);
        approx_eq(&a.matmul_t(&b), &naive_matmul(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_mat(4, 4, 11);
        let eye = Mat::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        approx_eq(&a.matmul(&eye), &a, 0.0);
        approx_eq(&eye.matmul(&a), &a, 0.0);
    }

    #[test]
    fn reset_reuses_allocation_and_zeroes() {
        let mut m = Mat::full(4, 4, 7.0);
        m.reset(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        let bias = Mat::from_vec(1, 2, vec![1.0, -2.0]);
        a.add_row_broadcast(&bias);
        assert_eq!(a.row(2), &[1.0, -2.0]);
        let sums = a.col_sums();
        assert_eq!(sums.data(), &[3.0, -6.0]);
    }

    #[test]
    fn col_slice_extracts_gates() {
        let m = Mat::from_fn(2, 8, |r, c| (r * 8 + c) as f32);
        let s = m.col_slice(2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[2.0, 3.0]);
        assert_eq!(s.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Mat::full(2, 3, 1.0);
        let b = Mat::full(1, 3, 2.0);
        let v = Mat::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(2), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn axpy_scale_hadamard() {
        let mut a = Mat::full(2, 2, 1.0);
        let b = Mat::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[7.0; 4]);
        a.scale(0.5);
        assert_eq!(a.data(), &[3.5; 4]);
        let h = a.hadamard(&b);
        assert_eq!(h.data(), &[10.5; 4]);
    }

    #[test]
    fn sq_norm_accumulates_in_f64() {
        let a = Mat::full(10, 10, 2.0);
        assert_eq!(a.sq_norm(), 400.0);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        let _ = a.matmul(&b);
    }
}
