//! Dense row-major f32 matrices with the handful of BLAS-like kernels the
//! LSTM training loops need.
//!
//! The models in this workspace are small (hidden sizes up to a few hundred,
//! batch sizes up to 64), so a cache-friendly `ikj` GEMM with a rayon split
//! over output rows outperforms anything fancier at this scale while staying
//! dependency-free. All kernels are exact (no fused-multiply-add reordering
//! games), which keeps gradient-check tests tight.

use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum number of scalar multiply-adds before a GEMM goes parallel.
/// Below this, rayon's fork/join overhead dominates.
const PAR_FLOP_THRESHOLD: usize = 1 << 17;

/// Row-major 2-D matrix of f32.
///
/// ```
/// use desh_nn::Mat;
/// let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let eye = Mat::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// assert_eq!(a.matmul(&eye), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mat({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Matrix filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self { rows, cols, data: vec![v; rows * cols] }
    }

    /// Build from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Build by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// (rows, cols).
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reset all elements to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// `self = self + other`, elementwise.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self = self + alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Mat) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self = self * alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise product into a new matrix.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape());
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Add a 1-row bias to every row.
    pub fn add_row_broadcast(&mut self, bias: &Mat) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Column sums as a 1-row matrix (bias gradient).
    pub fn col_sums(&self) -> Mat {
        let mut out = Mat::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// `C = A @ B` where A is `self` [m,k], B is [k,n].
    pub fn matmul(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.rows, "matmul shape mismatch {:?} x {:?}", self.shape(), b.shape());
        let (m, k, n) = (self.rows, self.cols, b.cols);
        let mut out = Mat::zeros(m, n);
        let work = m * k * n;
        let body = |r: usize, out_row: &mut [f32]| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (kk, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &b.data[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        };
        if work >= PAR_FLOP_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, row)| body(r, row));
        } else {
            for (r, row) in out.data.chunks_mut(n).enumerate() {
                body(r, row);
            }
        }
        out
    }

    /// `C = Aᵀ @ B` where A is `self` [k,m], B is [k,n]. Used for weight
    /// gradients (`dW = xᵀ dy`) without materialising the transpose.
    pub fn t_matmul(&self, b: &Mat) -> Mat {
        assert_eq!(self.rows, b.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, b.cols);
        let mut out = Mat::zeros(m, n);
        // out[i,j] = sum_k a[k,i] * b[k,j]; accumulate row-by-row of A/B.
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &b.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        }
        out
    }

    /// `C = A @ Bᵀ` where A is `self` [m,k], B is [n,k]. Used for input
    /// gradients (`dx = dy Wᵀ`).
    pub fn matmul_t(&self, b: &Mat) -> Mat {
        assert_eq!(self.cols, b.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, b.rows);
        let mut out = Mat::zeros(m, n);
        let work = m * k * n;
        let body = |r: usize, out_row: &mut [f32]| {
            let a_row = &self.data[r * k..(r + 1) * k];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &b.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                *o = acc;
            }
        };
        if work >= PAR_FLOP_THRESHOLD {
            out.data
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(r, row)| body(r, row));
        } else {
            for (r, row) in out.data.chunks_mut(n).enumerate() {
                body(r, row);
            }
        }
        out
    }

    /// Explicit transpose (rarely needed; gradients use the fused kernels).
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Horizontal slice of columns `[lo, hi)` as a new matrix.
    pub fn col_slice(&self, lo: usize, hi: usize) -> Mat {
        assert!(lo <= hi && hi <= self.cols);
        let w = hi - lo;
        let mut out = Mat::zeros(self.rows, w);
        for r in 0..self.rows {
            out.data[r * w..(r + 1) * w]
                .copy_from_slice(&self.data[r * self.cols + lo..r * self.cols + hi]);
        }
        out
    }

    /// Stack matrices with identical column counts vertically.
    pub fn vstack(mats: &[&Mat]) -> Mat {
        assert!(!mats.is_empty());
        let cols = mats[0].cols;
        assert!(mats.iter().all(|m| m.cols == cols));
        let rows = mats.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in mats {
            data.extend_from_slice(&m.data);
        }
        Mat { rows, cols, data }
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn approx_eq(a: &Mat, b: &Mat, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    fn test_mat(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut r = desh_util::Xoshiro256pp::seed_from_u64(seed);
        Mat::from_fn(rows, cols, |_, _| r.f32() * 2.0 - 1.0)
    }

    #[test]
    fn matmul_matches_naive() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (7, 5, 9), (16, 16, 16)] {
            let a = test_mat(m, k, 1);
            let b = test_mat(k, n, 2);
            approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-5);
        }
    }

    #[test]
    fn matmul_large_parallel_path() {
        let a = test_mat(80, 70, 3);
        let b = test_mat(70, 90, 4);
        approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = test_mat(6, 4, 5);
        let b = test_mat(6, 7, 6);
        approx_eq(&a.t_matmul(&b), &naive_matmul(&a.transpose(), &b), 1e-5);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = test_mat(5, 8, 7);
        let b = test_mat(9, 8, 8);
        approx_eq(&a.matmul_t(&b), &naive_matmul(&a, &b.transpose()), 1e-5);
        // Also exercise the parallel path.
        let a = test_mat(64, 64, 9);
        let b = test_mat(64, 64, 10);
        approx_eq(&a.matmul_t(&b), &naive_matmul(&a, &b.transpose()), 1e-4);
    }

    #[test]
    fn identity_is_neutral() {
        let a = test_mat(4, 4, 11);
        let eye = Mat::from_fn(4, 4, |r, c| if r == c { 1.0 } else { 0.0 });
        approx_eq(&a.matmul(&eye), &a, 0.0);
        approx_eq(&eye.matmul(&a), &a, 0.0);
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        let bias = Mat::from_vec(1, 2, vec![1.0, -2.0]);
        a.add_row_broadcast(&bias);
        assert_eq!(a.row(2), &[1.0, -2.0]);
        let sums = a.col_sums();
        assert_eq!(sums.data(), &[3.0, -6.0]);
    }

    #[test]
    fn col_slice_extracts_gates() {
        let m = Mat::from_fn(2, 8, |r, c| (r * 8 + c) as f32);
        let s = m.col_slice(2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[2.0, 3.0]);
        assert_eq!(s.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn vstack_concatenates() {
        let a = Mat::full(2, 3, 1.0);
        let b = Mat::full(1, 3, 2.0);
        let v = Mat::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(2), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn axpy_scale_hadamard() {
        let mut a = Mat::full(2, 2, 1.0);
        let b = Mat::full(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[7.0; 4]);
        a.scale(0.5);
        assert_eq!(a.data(), &[3.5; 4]);
        let h = a.hadamard(&b);
        assert_eq!(h.data(), &[10.5; 4]);
    }

    #[test]
    fn sq_norm_accumulates_in_f64() {
        let a = Mat::full(10, 10, 2.0);
        assert_eq!(a.sq_norm(), 400.0);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(4, 2);
        let _ = a.matmul(&b);
    }
}
