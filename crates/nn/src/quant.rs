//! Int8-quantized inference-only models.
//!
//! Deployment quantization for the online scoring path: weight matrices
//! are stored as `i8` with one symmetric per-tensor scale (`scale =
//! max|w| / 127`, zero-point 0), biases and all activations stay f32, and
//! the GEMV kernel widens `i8 → f32` on load and accumulates in f32
//! (dispatched through [`crate::simd`], so AVX2/NEON hosts get the
//! vectorized widen-FMA path). This quarters the resident weight bytes —
//! the lever that decides how many node models one scoring box can hold —
//! while keeping the per-element dequantization error bounded by
//! `scale / 2`.
//!
//! Only the inference surface of [`VectorLstm`] is mirrored
//! ([`QuantizedVectorLstm`]): `predict_next`, the carried-state streaming
//! scorer, and the O(n²) batch oracle used by tests. Training always stays
//! in f32; a quantized model is produced from a trained checkpoint via
//! [`QuantizedVectorLstm::from_f32`] (the `desh-cli quantize` subcommand)
//! and never holds the f32 tensors it was derived from.

use crate::loss::mse_vec;
use crate::lstm::{LstmLayer, LstmState};
use crate::mat::Mat;
use crate::models::VectorLstm;
use crate::simd;
use crate::stacked::StackedLstm;
use bytes::Bytes;
use desh_util::codec::{CodecError, Decoder, Encoder};

const MAGIC: [u8; 4] = *b"DSHQ";
const VERSION: u32 = 1;

/// A row-major i8 matrix with one symmetric dequantization scale:
/// `w[r,c] ≈ scale · q[r,c]`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMat {
    rows: usize,
    cols: usize,
    scale: f32,
    data: Vec<i8>,
}

impl QuantMat {
    /// Symmetric per-tensor quantization: `scale = max|w| / 127`,
    /// `q = round(w / scale)` clamped to ±127 (the all-zero tensor gets
    /// scale 1.0). Round-trip error per element is at most `scale / 2`.
    pub fn quantize(w: &Mat) -> Self {
        let maxabs = w.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
        let data = w
            .data()
            .iter()
            .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            rows: w.rows(),
            cols: w.cols(),
            scale,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The symmetric dequantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Raw quantized weights (row-major).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Materialize the f32 approximation (tests and error analysis).
    pub fn dequantize(&self) -> Mat {
        let data = self.data.iter().map(|&q| q as f32 * self.scale).collect();
        Mat::from_vec(self.rows, self.cols, data)
    }

    /// Resident weight bytes (i8 payload + the scale).
    pub fn resident_bytes(&self) -> usize {
        self.data.len() + std::mem::size_of::<f32>()
    }

    /// `out[0..n] += a @ self[:, lo..lo+n]` with f32 accumulation.
    fn gemv_acc(&self, a: &[f32], lo: usize, n: usize, out: &mut [f32]) {
        debug_assert_eq!(a.len(), self.rows);
        debug_assert!(lo + n <= self.cols);
        simd::gemv_i8_acc(a, &self.data, self.cols, lo, n, self.scale, out);
    }

    /// `out += a @ self` over the full width (row vector × matrix), with
    /// f32 accumulation. Public surface of the i8 GEMV kernel for benches
    /// and callers composing their own layers.
    pub fn gemv(&self, a: &[f32], out: &mut [f32]) {
        assert_eq!(a.len(), self.rows, "activation length mismatch");
        assert_eq!(out.len(), self.cols, "output length mismatch");
        self.gemv_acc(a, 0, self.cols, out);
    }
}

/// One quantized LSTM layer: i8 gate weights, f32 bias.
#[derive(Debug, Clone)]
pub struct QuantizedLstmLayer {
    wx: QuantMat,
    wh: QuantMat,
    b: Vec<f32>,
    input: usize,
    hidden: usize,
}

impl QuantizedLstmLayer {
    fn from_f32(layer: &LstmLayer) -> Self {
        Self {
            wx: QuantMat::quantize(&layer.wx.w),
            wh: QuantMat::quantize(&layer.wh.w),
            b: layer.b.w.data().to_vec(),
            input: layer.input_dim(),
            hidden: layer.hidden_dim(),
        }
    }

    /// One inference step: `pre = x@Wx + h@Wh + b`, then the fused gate
    /// kernel updates `state` in place. `pre` is caller scratch of shape
    /// `[batch, 4*hidden]`.
    fn step_into(&self, x: &Mat, state: &mut LstmState, pre: &mut Mat) {
        let batch = x.rows();
        debug_assert_eq!(x.cols(), self.input);
        debug_assert_eq!(pre.shape(), (batch, 4 * self.hidden));
        let gates = 4 * self.hidden;
        for r in 0..batch {
            let prow = pre.row_mut(r);
            prow.copy_from_slice(&self.b);
            self.wx.gemv_acc(x.row(r), 0, gates, prow);
        }
        for r in 0..batch {
            // Two loops so the immutable borrow of state.h ends before the
            // gate kernel takes it mutably.
            self.wh.gemv_acc(state.h.row(r), 0, gates, pre.row_mut(r));
        }
        for r in 0..batch {
            simd::lstm_gates_step(pre.row(r), state.c.row_mut(r), state.h.row_mut(r));
        }
    }

    /// [`QuantizedLstmLayer::step_into`] over only the listed rows of a
    /// slot-resident batch; untouched rows keep their state. The per-row
    /// i8 GEMV is already the batch=1 kernel, so each stepped row is
    /// bit-identical to its sequential history.
    fn step_rows_into(&self, x: &Mat, rows: &[usize], state: &mut LstmState, pre: &mut Mat) {
        debug_assert_eq!(x.cols(), self.input);
        debug_assert_eq!(pre.shape(), (x.rows(), 4 * self.hidden));
        let gates = 4 * self.hidden;
        for &r in rows {
            let prow = pre.row_mut(r);
            prow.copy_from_slice(&self.b);
            self.wx.gemv_acc(x.row(r), 0, gates, prow);
        }
        for &r in rows {
            self.wh.gemv_acc(state.h.row(r), 0, gates, pre.row_mut(r));
        }
        for &r in rows {
            simd::lstm_gates_step(pre.row(r), state.c.row_mut(r), state.h.row_mut(r));
        }
    }
}

/// Per-step transients for the quantized stack: one shared gate
/// pre-activation buffer (all layers share a hidden width) and the head
/// output staging row.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    pre: Mat,
    y: Mat,
}

impl QuantScratch {
    /// Fresh scratch; buffers are sized lazily on first step.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Inference-only quantized mirror of [`StackedLstm`].
#[derive(Debug, Clone)]
pub struct QuantizedStackedLstm {
    layers: Vec<QuantizedLstmLayer>,
    head_w: QuantMat,
    head_b: Vec<f32>,
    output: usize,
}

impl QuantizedStackedLstm {
    /// Quantize a trained f32 stack.
    pub fn from_f32(net: &StackedLstm) -> Self {
        Self {
            layers: net
                .layers
                .iter()
                .map(QuantizedLstmLayer::from_f32)
                .collect(),
            head_w: QuantMat::quantize(&net.head.w.w),
            head_b: net.head.b.w.data().to_vec(),
            output: net.output_dim(),
        }
    }

    /// Zero recurrent states for a streaming pass.
    pub fn zero_states(&self, batch: usize) -> Vec<LstmState> {
        self.layers
            .iter()
            .map(|l| LstmState::zeros(batch, l.hidden))
            .collect()
    }

    fn ensure_scratch(&self, batch: usize, ws: &mut QuantScratch) {
        let gates = 4 * self.layers[0].hidden;
        if ws.pre.shape() != (batch, gates) {
            ws.pre.reset(batch, gates);
        }
        if ws.y.shape() != (batch, self.output) {
            ws.y.reset(batch, self.output);
        }
    }

    /// Advance all recurrent layers one step in place (no head).
    pub fn step_layers(&self, x: &Mat, states: &mut [LstmState], ws: &mut QuantScratch) {
        assert_eq!(states.len(), self.layers.len());
        self.ensure_scratch(x.rows(), ws);
        for (l, layer) in self.layers.iter().enumerate() {
            // Split so layer l reads layer l-1's fresh output while
            // mutating its own state, exactly like the f32 stack.
            let (below, rest) = states.split_at_mut(l);
            let input = if l == 0 { x } else { &below[l - 1].h };
            layer.step_into(input, &mut rest[0], &mut ws.pre);
        }
    }

    /// One carried-state step plus the dense head, output by reference
    /// into the scratch buffer.
    pub fn step_infer_ws<'w>(
        &self,
        x: &Mat,
        states: &mut [LstmState],
        ws: &'w mut QuantScratch,
    ) -> &'w Mat {
        self.step_layers(x, states, ws);
        let top = &states[states.len() - 1].h;
        for r in 0..x.rows() {
            let yrow = ws.y.row_mut(r);
            yrow.copy_from_slice(&self.head_b);
            self.head_w.gemv_acc(top.row(r), 0, self.output, yrow);
        }
        &ws.y
    }

    /// Slot-resident batched step: advance only the listed rows through
    /// every layer and the head, mirroring
    /// [`crate::StackedLstm::step_infer_rows_ws`]. Per row bit-identical
    /// to a batch=1 [`QuantizedStackedLstm::step_infer_ws`].
    pub fn step_infer_rows_ws<'w>(
        &self,
        x: &Mat,
        rows: &[usize],
        states: &mut [LstmState],
        ws: &'w mut QuantScratch,
    ) -> &'w Mat {
        assert_eq!(states.len(), self.layers.len());
        self.ensure_scratch(x.rows(), ws);
        for (l, layer) in self.layers.iter().enumerate() {
            let (below, rest) = states.split_at_mut(l);
            let input = if l == 0 { x } else { &below[l - 1].h };
            layer.step_rows_into(input, rows, &mut rest[0], &mut ws.pre);
        }
        let top = &states[states.len() - 1].h;
        for &r in rows {
            let yrow = ws.y.row_mut(r);
            yrow.copy_from_slice(&self.head_b);
            self.head_w.gemv_acc(top.row(r), 0, self.output, yrow);
        }
        &ws.y
    }

    /// Resident weight bytes across all quantized tensors and f32 biases.
    pub fn resident_bytes(&self) -> usize {
        let f32b = std::mem::size_of::<f32>();
        let mut total = self.head_w.resident_bytes() + self.head_b.len() * f32b;
        for l in &self.layers {
            total += l.wx.resident_bytes() + l.wh.resident_bytes() + l.b.len() * f32b;
        }
        total
    }
}

/// Inference-only int8 twin of [`VectorLstm`]: same streaming and
/// window-prediction surface, ~4× smaller resident weights.
#[derive(Debug, Clone)]
pub struct QuantizedVectorLstm {
    net: QuantizedStackedLstm,
    dim: usize,
}

impl QuantizedVectorLstm {
    /// Quantize a trained f32 model. The result holds no f32 weight
    /// tensors.
    pub fn from_f32(model: &VectorLstm) -> Self {
        Self {
            net: QuantizedStackedLstm::from_f32(&model.net),
            dim: model.dim(),
        }
    }

    /// Sample width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Resident weight bytes of the quantized model.
    pub fn resident_bytes(&self) -> usize {
        self.net.resident_bytes()
    }

    /// Predict the next sample from a context window (mirrors
    /// [`VectorLstm::predict_next`], including the left zero-padding of
    /// short windows).
    pub fn predict_next(&self, window: &[&[f32]], history: usize) -> Vec<f32> {
        assert!(!window.is_empty());
        let mut states = self.net.zero_states(1);
        let mut ws = QuantScratch::new();
        let mut x = Mat::zeros(1, self.dim);
        let pad = history.saturating_sub(window.len());
        for _ in 0..pad {
            x.clear();
            self.net.step_layers(&x, &mut states, &mut ws);
        }
        for w in window.iter().skip(window.len().saturating_sub(history)) {
            x.row_mut(0).copy_from_slice(w);
            self.net.step_layers(&x, &mut states, &mut ws);
        }
        self.net.step_head(&states, &mut ws).to_vec()
    }

    /// Begin a carried-state streaming pass (same contract as
    /// [`VectorLstm::begin_stream`]).
    pub fn begin_stream(&self) -> QuantizedVectorStream {
        QuantizedVectorStream {
            states: self.net.zero_states(1),
            ws: QuantScratch::new(),
            x: Mat::zeros(1, self.dim),
            pred: vec![0.0; self.dim],
            steps: 0,
        }
    }

    /// Feed the next sample; returns the one-step-ahead MSE of the
    /// previous prediction against it (`None` on the first push).
    pub fn stream_push(&self, st: &mut QuantizedVectorStream, sample: &[f32]) -> Option<f64> {
        assert_eq!(sample.len(), self.dim, "sample width mismatch");
        let score = (st.steps > 0).then(|| mse_vec(&st.pred, sample));
        st.x.row_mut(0).copy_from_slice(sample);
        let y = self.net.step_infer_ws(&st.x, &mut st.states, &mut st.ws);
        st.pred.copy_from_slice(y.row(0));
        st.steps += 1;
        score
    }

    /// Begin a slot-resident batched streaming pass (same contract as
    /// [`VectorLstm::begin_stream_batch`]).
    pub fn begin_stream_batch(&self, slots: usize) -> QuantizedVectorStreamBatch {
        QuantizedVectorStreamBatch {
            states: self.net.zero_states(slots),
            ws: QuantScratch::new(),
            x: Mat::zeros(slots, self.dim),
            preds: Mat::zeros(slots, self.dim),
            steps: vec![0; slots],
        }
    }

    /// Batched twin of [`QuantizedVectorLstm::stream_push`]: one staged
    /// sample per listed slot, scores refilled in `rows` order, each slot
    /// bit-identical to its sequential stream (same contract as
    /// [`VectorLstm::stream_push_rows`]).
    pub fn stream_push_rows(
        &self,
        sb: &mut QuantizedVectorStreamBatch,
        rows: &[usize],
        scores: &mut Vec<Option<f64>>,
    ) {
        scores.clear();
        for &r in rows {
            scores.push((sb.steps[r] > 0).then(|| mse_vec(sb.preds.row(r), sb.x.row(r))));
        }
        let y = self
            .net
            .step_infer_rows_ws(&sb.x, rows, &mut sb.states, &mut sb.ws);
        for &r in rows {
            sb.preds.row_mut(r).copy_from_slice(y.row(r));
            sb.steps[r] += 1;
        }
    }

    /// O(n²) batch oracle mirroring [`VectorLstm::score_stream_batch`].
    pub fn score_stream_batch(&self, seq: &[Vec<f32>]) -> Vec<f64> {
        let mut scores = Vec::with_capacity(seq.len().saturating_sub(1));
        for t in 1..seq.len() {
            let mut st = self.begin_stream();
            for v in &seq[..t] {
                self.stream_push(&mut st, v);
            }
            scores.push(mse_vec(&st.pred, &seq[t]));
        }
        scores
    }

    /// Serialize to bytes (`DSHQ` v1).
    pub fn to_bytes(&self) -> Bytes {
        let mut e = Encoder::with_header(MAGIC, VERSION);
        e.put_u64(self.dim as u64);
        e.put_u64(self.net.layers.len() as u64);
        for l in &self.net.layers {
            e.put_u64(l.input as u64);
            e.put_u64(l.hidden as u64);
            put_qmat(&mut e, &l.wx);
            put_qmat(&mut e, &l.wh);
            e.put_f32_slice(&l.b);
        }
        put_qmat(&mut e, &self.net.head_w);
        e.put_f32_slice(&self.net.head_b);
        e.finish()
    }

    /// Restore from bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: Bytes) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        d.expect_header(MAGIC, VERSION)?;
        let dim = d.u64()? as usize;
        let nlayers = d.u64()? as usize;
        let mut layers = Vec::with_capacity(nlayers);
        for _ in 0..nlayers {
            let input = d.u64()? as usize;
            let hidden = d.u64()? as usize;
            let wx = get_qmat(&mut d)?;
            let wh = get_qmat(&mut d)?;
            let b = d.f32_vec()?;
            layers.push(QuantizedLstmLayer {
                wx,
                wh,
                b,
                input,
                hidden,
            });
        }
        let head_w = get_qmat(&mut d)?;
        let head_b = d.f32_vec()?;
        let output = head_b.len();
        Ok(Self {
            net: QuantizedStackedLstm {
                layers,
                head_w,
                head_b,
                output,
            },
            dim,
        })
    }
}

impl QuantizedStackedLstm {
    /// Apply only the dense head to the top layer's current hidden state.
    fn step_head<'w>(&self, states: &[LstmState], ws: &'w mut QuantScratch) -> &'w [f32] {
        let top = &states[states.len() - 1].h;
        self.ensure_scratch(top.rows(), ws);
        let yrow = ws.y.row_mut(0);
        yrow.copy_from_slice(&self.head_b);
        self.head_w.gemv_acc(top.row(0), 0, self.output, yrow);
        ws.y.row(0)
    }
}

/// Carried state for a [`QuantizedVectorLstm`] streaming pass.
#[derive(Debug, Clone)]
pub struct QuantizedVectorStream {
    states: Vec<LstmState>,
    ws: QuantScratch,
    x: Mat,
    pred: Vec<f32>,
    steps: usize,
}

impl QuantizedVectorStream {
    /// Number of samples pushed so far.
    pub fn len(&self) -> usize {
        self.steps
    }

    /// True when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }

    /// The model's current prediction of the *next* sample (zeros before
    /// the first push).
    pub fn prediction(&self) -> &[f32] {
        &self.pred
    }
}

/// Slot-resident carried state for a batched [`QuantizedVectorLstm`]
/// streaming pass (int8 twin of [`crate::VectorStreamBatch`]).
#[derive(Debug, Clone)]
pub struct QuantizedVectorStreamBatch {
    states: Vec<LstmState>,
    ws: QuantScratch,
    x: Mat,
    preds: Mat,
    steps: Vec<usize>,
}

impl QuantizedVectorStreamBatch {
    /// Slot capacity.
    pub fn slots(&self) -> usize {
        self.steps.len()
    }

    /// Stage buffer for `slot`'s next sample; overwrite the whole row
    /// before listing the slot in a push wave.
    pub fn input_row_mut(&mut self, slot: usize) -> &mut [f32] {
        self.x.row_mut(slot)
    }

    /// Samples pushed through `slot` so far.
    pub fn len(&self, slot: usize) -> usize {
        self.steps[slot]
    }

    /// True when `slot` has seen no samples since its last reset.
    pub fn is_empty(&self, slot: usize) -> bool {
        self.steps[slot] == 0
    }

    /// The model's current prediction of `slot`'s next sample.
    pub fn prediction(&self, slot: usize) -> &[f32] {
        self.preds.row(slot)
    }

    /// Return `slot` to the fresh-stream state so a new node can take it
    /// over.
    pub fn reset_slot(&mut self, slot: usize) {
        for st in &mut self.states {
            st.h.row_mut(slot).fill(0.0);
            st.c.row_mut(slot).fill(0.0);
        }
        self.preds.row_mut(slot).fill(0.0);
        self.steps[slot] = 0;
    }
}

fn put_qmat(e: &mut Encoder, m: &QuantMat) {
    e.put_u64(m.rows as u64);
    e.put_u64(m.cols as u64);
    e.put_f32(m.scale);
    e.put_i8_slice(&m.data);
}

fn get_qmat(d: &mut Decoder) -> Result<QuantMat, CodecError> {
    let rows = d.u64()? as usize;
    let cols = d.u64()? as usize;
    let scale = d.f32()?;
    let data = d.i8_vec()?;
    if data.len() != rows * cols {
        return Err(CodecError::LengthOverflow(data.len() as u64));
    }
    Ok(QuantMat {
        rows,
        cols,
        scale,
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TrainConfig;
    use crate::optim::RmsProp;
    use desh_util::Xoshiro256pp;

    fn toy_seqs(dim: usize, n: usize, len: usize) -> Vec<Vec<Vec<f32>>> {
        // A predictable drifting pattern the model can track.
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|t| (0..dim).map(|d| (((s + t + d) % 5) as f32) / 5.0).collect())
                    .collect()
            })
            .collect()
    }

    fn trained_model(dim: usize) -> VectorLstm {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let mut m = VectorLstm::new(dim, 16, 2, &mut rng);
        let seqs = toy_seqs(dim, 4, 12);
        let cfg = TrainConfig {
            history: 6,
            batch: 4,
            epochs: 5,
            clip: 5.0,
        };
        let mut opt = RmsProp::new(0.005);
        m.train(&seqs, &cfg, &mut opt, &mut rng);
        m
    }

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let w = Mat::from_fn(13, 29, |_, _| rng.f32() * 2.0 - 1.0);
        let q = QuantMat::quantize(&w);
        let deq = q.dequantize();
        let bound = q.scale() * 0.5 + 1e-7;
        for (a, b) in w.data().iter().zip(deq.data()) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let q = QuantMat::quantize(&Mat::zeros(3, 4));
        assert_eq!(q.scale(), 1.0);
        assert!(q.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn quantized_predictions_track_f32() {
        let m = trained_model(3);
        let qm = QuantizedVectorLstm::from_f32(&m);
        let seq: Vec<Vec<f32>> = toy_seqs(3, 1, 10).remove(0);
        let f32_scores = m.score_stream_batch(&seq);
        let mut st = qm.begin_stream();
        let mut q_scores = Vec::new();
        for v in &seq {
            if let Some(s) = qm.stream_push(&mut st, v) {
                q_scores.push(s);
            }
        }
        assert_eq!(f32_scores.len(), q_scores.len());
        for (a, b) in f32_scores.iter().zip(&q_scores) {
            assert!((a - b).abs() < 0.02, "f32 {a} vs int8 {b}");
        }
    }

    #[test]
    fn quantized_stream_matches_batch_oracle() {
        let m = trained_model(2);
        let qm = QuantizedVectorLstm::from_f32(&m);
        let seq: Vec<Vec<f32>> = toy_seqs(2, 1, 8).remove(0);
        let batch = qm.score_stream_batch(&seq);
        let mut st = qm.begin_stream();
        let mut streamed = Vec::new();
        for v in &seq {
            if let Some(s) = qm.stream_push(&mut st, v) {
                streamed.push(s);
            }
        }
        assert_eq!(batch, streamed);
    }

    #[test]
    fn predict_next_matches_f32_shape_and_tracks_values() {
        let m = trained_model(3);
        let qm = QuantizedVectorLstm::from_f32(&m);
        let seq: Vec<Vec<f32>> = toy_seqs(3, 1, 7).remove(0);
        let window: Vec<&[f32]> = seq.iter().map(|v| v.as_slice()).collect();
        let f = m.predict_next(&window, 6);
        let q = qm.predict_next(&window, 6);
        assert_eq!(f.len(), q.len());
        for (a, b) in f.iter().zip(&q) {
            assert!((a - b).abs() < 0.05, "f32 {a} vs int8 {b}");
        }
    }

    #[test]
    fn quantized_stream_push_rows_bit_identical_to_streams() {
        let m = trained_model(2);
        let qm = QuantizedVectorLstm::from_f32(&m);
        let slots = 3usize;
        let seqs: Vec<Vec<Vec<f32>>> = (0..slots)
            .map(|s| toy_seqs(2, 1, 6 + s).remove(0))
            .collect();
        let mut sb = qm.begin_stream_batch(slots);
        let mut wave_scores = Vec::new();
        let mut batched: Vec<Vec<Option<f64>>> = vec![Vec::new(); slots];
        let max_t = seqs.iter().map(|s| s.len()).max().unwrap();
        for t in 0..max_t {
            if t == 2 {
                sb.reset_slot(1);
            }
            let rows: Vec<usize> = (0..slots).filter(|&s| t < seqs[s].len()).collect();
            for &s in &rows {
                sb.input_row_mut(s).copy_from_slice(&seqs[s][t]);
            }
            qm.stream_push_rows(&mut sb, &rows, &mut wave_scores);
            for (&s, sc) in rows.iter().zip(&wave_scores) {
                batched[s].push(*sc);
            }
        }
        for s in 0..slots {
            let mut st = qm.begin_stream();
            let mut want = Vec::new();
            for (t, sample) in seqs[s].iter().enumerate() {
                if s == 1 && t == 2 {
                    st = qm.begin_stream();
                }
                want.push(qm.stream_push(&mut st, sample));
            }
            assert_eq!(batched[s], want, "slot {s} scores diverged");
            let pb: Vec<u32> = sb.prediction(s).iter().map(|x| x.to_bits()).collect();
            let ps: Vec<u32> = st.prediction().iter().map(|x| x.to_bits()).collect();
            assert_eq!(pb, ps, "slot {s} prediction diverged");
        }
    }

    #[test]
    fn serialization_roundtrip_is_exact() {
        let m = trained_model(2);
        let qm = QuantizedVectorLstm::from_f32(&m);
        let bytes = qm.to_bytes();
        let back = QuantizedVectorLstm::from_bytes(bytes).unwrap();
        assert_eq!(qm.dim(), back.dim());
        let seq: Vec<Vec<f32>> = toy_seqs(2, 1, 8).remove(0);
        assert_eq!(qm.score_stream_batch(&seq), back.score_stream_batch(&seq));
    }

    #[test]
    fn resident_bytes_are_at_least_3x_smaller_than_f32() {
        let m = trained_model(3);
        let qm = QuantizedVectorLstm::from_f32(&m);
        let f32_bytes: usize = m.net.params().iter().map(|p| p.w.data().len() * 4).sum();
        let q_bytes = qm.resident_bytes();
        assert!(
            q_bytes * 3 <= f32_bytes,
            "quantized {q_bytes} B vs f32 {f32_bytes} B"
        );
    }
}
