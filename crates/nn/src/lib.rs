//! `desh-nn`: a from-scratch CPU deep-learning substrate.
//!
//! The Desh paper prototypes its pipeline with Keras on a TensorFlow
//! backend. This crate rebuilds exactly the pieces that pipeline needs —
//! nothing more — in dependency-light Rust (the only `unsafe` is the
//! feature-gated SIMD intrinsics in [`simd`]):
//!
//! * [`mat::Mat`] — row-major f32 matrices with rayon-parallel GEMM kernels.
//! * [`embedding::Embedding`] — phrase-id lookup tables.
//! * [`lstm::LstmLayer`] — an LSTM layer with full backpropagation through
//!   time; [`stacked::StackedLstm`] stacks them under a dense head
//!   (the paper's 2-hidden-layer configuration, Figure 1b).
//! * [`loss`] — categorical cross-entropy (phase 1) and MSE (phases 2/3).
//! * [`optim`] — SGD and RMSprop (Table 5), plus Adam for ablations.
//! * [`sgns::SkipGram`] — skip-gram embeddings with negative sampling and
//!   the paper's asymmetric 8-left/3-right context window.
//! * [`models::TokenLstm`] / [`models::VectorLstm`] — the two trained model
//!   shapes (next-phrase classifier; (ΔT, phrase) regressor).
//! * [`parallel`] — data-parallel training support: fixed-count gradient
//!   shards merged by a deterministic tree reduction, so training is
//!   bit-for-bit reproducible at any thread count.
//! * [`simd`] — runtime-dispatched SIMD micro-kernels (AVX2/FMA on x86_64,
//!   NEON on aarch64, scalar fallback via `DESH_SIMD=off`) behind the GEMM,
//!   GEMV and fused-gate paths.
//! * [`quant`] — int8 symmetric per-tensor quantized inference models
//!   ([`quant::QuantizedVectorLstm`]) with f32 accumulation, ~4× smaller
//!   resident weights for the online scoring path.
//!
//! Everything is deterministic given a [`desh_util::Xoshiro256pp`] seed, and
//! every layer's backward pass is covered by numerical gradient checks in
//! its unit tests.

pub mod act;
pub mod dense;
pub mod dropout;
pub mod embedding;
pub mod gru;
pub mod loss;
pub mod lstm;
pub mod mat;
pub mod models;
pub mod observe;
pub mod optim;
pub mod parallel;
pub mod param;
pub mod quant;
pub mod schedule;
pub mod serialize;
pub mod sgns;
pub mod simd;
pub mod stacked;

pub use dense::Dense;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gru::{GruLayer, GruScratch};
pub use lstm::{LstmLayer, LstmScratch, LstmState};
pub use mat::Mat;
pub use models::{
    ScoreWorkspace, TokenLstm, TrainConfig, VectorLstm, VectorStream, VectorStreamBatch,
};
pub use observe::{NoopObserver, ParamStats, RecordingObserver, ShardStats, TrainObserver};
pub use optim::{nonfinite_grad_count, Adam, Optimizer, RmsProp, Sgd};
pub use parallel::{shard_count, GradSet};
pub use param::Param;
pub use quant::{
    QuantMat, QuantizedStackedLstm, QuantizedVectorLstm, QuantizedVectorStream,
    QuantizedVectorStreamBatch,
};
pub use schedule::{Constant, Cosine, Schedule, StepDecay, Warmup};
pub use sgns::{SgnsConfig, SkipGram};
pub use simd::{backend as kernel_backend, backend_name as kernel_backend_name, Backend};
pub use stacked::{StackedLstm, StackedScratch};
