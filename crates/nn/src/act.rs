//! Scalar activations used by the LSTM gates.

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Hyperbolic tangent (thin wrapper for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of sigmoid expressed in terms of its output `s`.
#[inline]
pub fn dsigmoid_from_out(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Derivative of tanh expressed in terms of its output `t`.
#[inline]
pub fn dtanh_from_out(t: f32) -> f32 {
    1.0 - t * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_known_values() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(20.0) > 0.999_999);
        assert!(sigmoid(-20.0) < 1e-6);
        // Stability: no NaN at extremes.
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn sigmoid_symmetry() {
        for x in [-3.0f32, -0.5, 0.7, 2.2] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-3f32;
        for x in [-2.0f32, -0.3, 0.0, 0.9, 1.7] {
            let ds = (sigmoid(x + eps) - sigmoid(x - eps)) / (2.0 * eps);
            assert!((dsigmoid_from_out(sigmoid(x)) - ds).abs() < 1e-4);
            let dt = (tanh(x + eps) - tanh(x - eps)) / (2.0 * eps);
            assert!((dtanh_from_out(tanh(x)) - dt).abs() < 1e-4);
        }
    }
}
