//! Embedding lookup table mapping phrase ids to dense vectors.
//!
//! Phase 1 of Desh feeds encoded phrase ids through word embeddings before
//! the stacked LSTM. The table can be trained jointly with the LSTM (rows
//! receive gradients through [`Embedding::backward`]) or pre-trained with
//! the skip-gram model in [`crate::sgns`] and then loaded here.

use crate::mat::Mat;
use crate::param::Param;
use desh_util::Xoshiro256pp;

/// Lookup table of shape [vocab, dim].
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table; row `i` is the vector for id `i`.
    pub table: Param,
}

/// Cache of the ids used in a forward pass.
#[derive(Debug)]
pub struct EmbeddingCache {
    ids: Vec<u32>,
}

impl Embedding {
    /// New table with uniform init in [-0.5/dim, 0.5/dim] (word2vec's choice).
    pub fn new(vocab: usize, dim: usize, rng: &mut Xoshiro256pp) -> Self {
        Self {
            table: Param::uniform("embed", vocab, dim, 0.5 / dim as f32, rng),
        }
    }

    /// Wrap a pre-trained table (e.g. from skip-gram).
    pub fn from_table(table: Mat) -> Self {
        let g = Mat::zeros(table.rows(), table.cols());
        Self {
            table: Param {
                w: table,
                g,
                name: "embed".into(),
            },
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.w.rows()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.table.w.cols()
    }

    /// Look up a batch of ids: output shape [ids.len(), dim].
    pub fn forward(&self, ids: &[u32]) -> (Mat, EmbeddingCache) {
        (self.infer(ids), EmbeddingCache { ids: ids.to_vec() })
    }

    /// Lookup without cache.
    pub fn infer(&self, ids: &[u32]) -> Mat {
        let dim = self.dim();
        let mut out = Mat::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!((id as usize) < self.vocab(), "id {id} out of vocabulary");
            out.row_mut(r)
                .copy_from_slice(self.table.w.row(id as usize));
        }
        out
    }

    /// Scatter-add `dy` rows into the gradient of the looked-up ids.
    pub fn backward(&mut self, cache: &EmbeddingCache, dy: &Mat) {
        let dim = self.dim();
        Self::scatter_add(&mut self.table.g, cache, dy, dim);
    }

    /// Scatter-add `dy` rows into an external gradient table (`&self`):
    /// the data-parallel trainer's per-shard path. `gtable` must have the
    /// table's shape.
    pub fn backward_into(&self, cache: &EmbeddingCache, dy: &Mat, gtable: &mut Mat) {
        assert_eq!(gtable.shape(), self.table.w.shape());
        Self::scatter_add(gtable, cache, dy, self.dim());
    }

    fn scatter_add(gtable: &mut Mat, cache: &EmbeddingCache, dy: &Mat, dim: usize) {
        assert_eq!(dy.rows(), cache.ids.len());
        assert_eq!(dy.cols(), dim);
        for (r, &id) in cache.ids.iter().enumerate() {
            let grow = gtable.row_mut(id as usize);
            for (g, d) in grow.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
    }

    /// Cosine similarity between two ids' vectors.
    pub fn cosine(&self, a: u32, b: u32) -> f32 {
        let va = self.table.w.row(a as usize);
        let vb = self.table.w.row(b as usize);
        let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
        let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Ids most similar to `id` by cosine, excluding itself.
    pub fn nearest(&self, id: u32, k: usize) -> Vec<(u32, f32)> {
        let mut scored: Vec<(u32, f32)> = (0..self.vocab() as u32)
            .filter(|&j| j != id)
            .map(|j| (j, self.cosine(id, j)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_rows() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let e = Embedding::new(5, 3, &mut rng);
        let (out, _) = e.forward(&[2, 2, 4]);
        assert_eq!(out.shape(), (3, 3));
        assert_eq!(out.row(0), e.table.w.row(2));
        assert_eq!(out.row(1), e.table.w.row(2));
        assert_eq!(out.row(2), e.table.w.row(4));
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut e = Embedding::new(4, 2, &mut rng);
        let (_, cache) = e.forward(&[1, 1, 3]);
        let dy = Mat::from_vec(3, 2, vec![1.0, 2.0, 10.0, 20.0, 5.0, 6.0]);
        e.backward(&cache, &dy);
        assert_eq!(e.table.g.row(1), &[11.0, 22.0]);
        assert_eq!(e.table.g.row(3), &[5.0, 6.0]);
        assert_eq!(e.table.g.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn cosine_of_same_direction_is_one() {
        let table = Mat::from_vec(3, 2, vec![1.0, 0.0, 2.0, 0.0, 0.0, 1.0]);
        let e = Embedding::from_table(table);
        assert!((e.cosine(0, 1) - 1.0).abs() < 1e-6);
        assert!(e.cosine(0, 2).abs() < 1e-6);
        let nn = e.nearest(0, 1);
        assert_eq!(nn[0].0, 1);
    }

    #[test]
    #[should_panic]
    fn out_of_vocab_panics() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let e = Embedding::new(2, 2, &mut rng);
        e.infer(&[5]);
    }
}
