//! Training observation hook.
//!
//! `desh-nn` deliberately has no telemetry dependency — it is the numeric
//! substrate. Callers that want per-epoch progress (loss curves, epoch
//! wall time) implement [`TrainObserver`] and pass it to
//! `TokenLstm::train_observed` / `VectorLstm::train_observed`; `desh-core`
//! provides an adapter that forwards into a `desh-obs` registry. The plain
//! `train` methods use [`NoopObserver`] and cost nothing extra.

use std::time::Duration;

/// Per-shard work accounting for one epoch of the data-parallel trainer.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index (fixed for the process; see `parallel::shard_count`).
    pub shard: usize,
    /// Training windows the shard processed this epoch.
    pub windows: usize,
    /// Wall-clock the shard spent in forward/backward this epoch.
    pub busy: Duration,
}

impl ShardStats {
    /// Windows per second of busy time (0 when the shard sat idle).
    pub fn throughput(&self) -> f64 {
        if self.busy.is_zero() {
            0.0
        } else {
            self.windows as f64 / self.busy.as_secs_f64()
        }
    }
}

/// Receives one callback per completed training epoch.
pub trait TrainObserver {
    /// `epoch` is zero-based; `mean_loss` is the epoch's mean batch loss;
    /// `elapsed` is the epoch's wall time.
    fn on_epoch(&mut self, epoch: usize, mean_loss: f64, elapsed: Duration);

    /// Per-shard work stats after each epoch of the data-parallel
    /// trainer. Default: ignored, so closure observers and existing
    /// implementations keep working unchanged.
    fn on_shards(&mut self, _epoch: usize, _stats: &[ShardStats]) {}

    /// Wall time of one deterministic gradient tree-reduction (called
    /// once per minibatch by the data-parallel trainer). Default: ignored.
    fn on_grad_reduce(&mut self, _elapsed: Duration) {}
}

/// Observer that ignores everything (the default for `train`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl TrainObserver for NoopObserver {
    fn on_epoch(&mut self, _epoch: usize, _mean_loss: f64, _elapsed: Duration) {}
}

/// Observer that retains `(mean_loss, elapsed)` per epoch — handy in
/// tests and small tools that want the curve without a metrics registry.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// One `(mean_loss, elapsed)` entry per epoch, in order.
    pub epochs: Vec<(f64, Duration)>,
}

impl TrainObserver for RecordingObserver {
    fn on_epoch(&mut self, _epoch: usize, mean_loss: f64, elapsed: Duration) {
        self.epochs.push((mean_loss, elapsed));
    }
}

impl<F: FnMut(usize, f64, Duration)> TrainObserver for F {
    fn on_epoch(&mut self, epoch: usize, mean_loss: f64, elapsed: Duration) {
        self(epoch, mean_loss, elapsed)
    }
}
