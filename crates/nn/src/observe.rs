//! Training observation hook.
//!
//! `desh-nn` deliberately has no telemetry dependency — it is the numeric
//! substrate. Callers that want per-epoch progress (loss curves, epoch
//! wall time) implement [`TrainObserver`] and pass it to
//! `TokenLstm::train_observed` / `VectorLstm::train_observed`; `desh-core`
//! provides an adapter that forwards into a `desh-obs` registry. The plain
//! `train` methods use [`NoopObserver`] and cost nothing extra.

use crate::mat::Mat;
use crate::param::Param;
use bytes::Bytes;
use std::time::Duration;

/// Per-shard work accounting for one epoch of the data-parallel trainer.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index (fixed for the process; see `parallel::shard_count`).
    pub shard: usize,
    /// Training windows the shard processed this epoch.
    pub windows: usize,
    /// Wall-clock the shard spent in forward/backward this epoch.
    pub busy: Duration,
}

impl ShardStats {
    /// Windows per second of busy time (0 when the shard sat idle).
    pub fn throughput(&self) -> f64 {
        if self.busy.is_zero() {
            0.0
        } else {
            self.windows as f64 / self.busy.as_secs_f64()
        }
    }
}

/// Per-parameter ("layer") statistics for one completed training epoch,
/// computed by the data-parallel trainer from the tree-reduced gradient
/// buffers — one extra pass over the merged `GradSet` per minibatch, and
/// only when the observer opts in via
/// [`TrainObserver::wants_param_stats`].
#[derive(Debug, Clone)]
pub struct ParamStats {
    /// Parameter name (e.g. `"lstm0.wx"`, `"embed"`).
    pub name: String,
    /// L2 norm of the weights at epoch end.
    pub weight_norm: f64,
    /// Mean over the epoch's minibatches of the merged (pre-clip)
    /// gradient's L2 norm.
    pub grad_norm_mean: f64,
    /// Largest per-minibatch merged gradient L2 norm seen this epoch.
    pub grad_norm_max: f64,
    /// `lr * grad_norm_mean / weight_norm` — a cheap proxy for the
    /// update-to-weight ratio (healthy SGD sits around 1e-3; values near
    /// 1 mean the optimizer is rewriting the layer every step). 0 when
    /// the weight norm is 0.
    pub update_ratio: f64,
    /// Non-finite (NaN/Inf) gradient values observed this epoch.
    pub nonfinite: u64,
}

/// Receives one callback per completed training epoch.
pub trait TrainObserver {
    /// `epoch` is zero-based; `mean_loss` is the epoch's mean batch loss;
    /// `elapsed` is the epoch's wall time.
    fn on_epoch(&mut self, epoch: usize, mean_loss: f64, elapsed: Duration);

    /// Per-shard work stats after each epoch of the data-parallel
    /// trainer. Default: ignored, so closure observers and existing
    /// implementations keep working unchanged.
    fn on_shards(&mut self, _epoch: usize, _stats: &[ShardStats]) {}

    /// Wall time of one deterministic gradient tree-reduction (called
    /// once per minibatch by the data-parallel trainer). Default: ignored.
    fn on_grad_reduce(&mut self, _elapsed: Duration) {}

    /// Opt-in gate for per-layer gradient statistics. Return `true` and
    /// the trainer spends one pass over the merged gradient buffers per
    /// minibatch to feed [`TrainObserver::on_param_stats`]. Default
    /// `false`, so [`NoopObserver`] (and every pre-existing observer)
    /// pays nothing.
    fn wants_param_stats(&self) -> bool {
        false
    }

    /// Per-layer weight/gradient statistics after each epoch, in
    /// parameter order. Only called when [`Self::wants_param_stats`]
    /// returns `true`. Default: ignored.
    fn on_param_stats(&mut self, _epoch: usize, _stats: &[ParamStats]) {}

    /// Opt-in gate for per-epoch checkpoint snapshots. Default `false`.
    fn wants_checkpoints(&self) -> bool {
        false
    }

    /// Called after each epoch when [`Self::wants_checkpoints`] is
    /// `true`, with a lazy serializer for the model's current weights.
    /// Observers that keep a "last good" snapshot (divergence watchdogs)
    /// call `serialize()`; the cost is only paid on demand.
    fn on_checkpoint(&mut self, _epoch: usize, _serialize: &mut dyn FnMut() -> Bytes) {}

    /// Polled after each epoch's callbacks; return `true` to stop
    /// training early (remaining epochs are skipped and the losses
    /// collected so far are returned). Default: never stops.
    fn should_stop(&self) -> bool {
        false
    }
}

/// Epoch accumulator behind [`TrainObserver::on_param_stats`]: one slot
/// per parameter, fed once per minibatch from the tree-reduced gradient
/// buffers (a single fused norm + non-finite-count pass), drained once
/// per epoch.
pub(crate) struct ParamStatsAcc {
    names: Vec<String>,
    grad_norm_sum: Vec<f64>,
    grad_sq_max: Vec<f64>,
    nonfinite: Vec<u64>,
    batches: u64,
}

impl ParamStatsAcc {
    pub(crate) fn new(params: &[&Param]) -> Self {
        Self {
            names: params.iter().map(|p| p.name.clone()).collect(),
            grad_norm_sum: vec![0.0; params.len()],
            grad_sq_max: vec![0.0; params.len()],
            nonfinite: vec![0; params.len()],
            batches: 0,
        }
    }

    /// Fold one minibatch's merged gradients in: per parameter, a single
    /// pass accumulating the squared L2 norm and counting non-finite
    /// values (which are excluded from the norm so one NaN doesn't erase
    /// the magnitude signal).
    pub(crate) fn accumulate(&mut self, grads: &[Mat]) {
        debug_assert_eq!(grads.len(), self.names.len());
        for (i, g) in grads.iter().enumerate() {
            let mut sq = 0.0f64;
            let mut bad = 0u64;
            for &x in g.data() {
                if x.is_finite() {
                    sq += f64::from(x) * f64::from(x);
                } else {
                    bad += 1;
                }
            }
            self.grad_norm_sum[i] += sq.sqrt();
            if sq > self.grad_sq_max[i] {
                self.grad_sq_max[i] = sq;
            }
            self.nonfinite[i] += bad;
        }
        self.batches += 1;
    }

    /// Drain the epoch into per-layer stats (weight norms are read here,
    /// once per epoch) and reset for the next epoch.
    pub(crate) fn finish_epoch(&mut self, params: &[&Param], lr: f64) -> Vec<ParamStats> {
        let batches = self.batches.max(1) as f64;
        let out = params
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let weight_norm = p.w.sq_norm().sqrt();
                let grad_norm_mean = self.grad_norm_sum[i] / batches;
                let update_ratio = if weight_norm > 0.0 {
                    lr * grad_norm_mean / weight_norm
                } else {
                    0.0
                };
                ParamStats {
                    name: self.names[i].clone(),
                    weight_norm,
                    grad_norm_mean,
                    grad_norm_max: self.grad_sq_max[i].sqrt(),
                    update_ratio,
                    nonfinite: self.nonfinite[i],
                }
            })
            .collect();
        self.grad_norm_sum.iter_mut().for_each(|x| *x = 0.0);
        self.grad_sq_max.iter_mut().for_each(|x| *x = 0.0);
        self.nonfinite.iter_mut().for_each(|x| *x = 0);
        self.batches = 0;
        out
    }
}

/// Observer that ignores everything (the default for `train`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl TrainObserver for NoopObserver {
    fn on_epoch(&mut self, _epoch: usize, _mean_loss: f64, _elapsed: Duration) {}
}

/// Observer that retains `(mean_loss, elapsed)` per epoch — handy in
/// tests and small tools that want the curve without a metrics registry.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// One `(mean_loss, elapsed)` entry per epoch, in order.
    pub epochs: Vec<(f64, Duration)>,
}

impl TrainObserver for RecordingObserver {
    fn on_epoch(&mut self, _epoch: usize, mean_loss: f64, elapsed: Duration) {
        self.epochs.push((mean_loss, elapsed));
    }
}

impl<F: FnMut(usize, f64, Duration)> TrainObserver for F {
    fn on_epoch(&mut self, epoch: usize, mean_loss: f64, elapsed: Duration) {
        self(epoch, mean_loss, elapsed)
    }
}
