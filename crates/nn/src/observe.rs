//! Training observation hook.
//!
//! `desh-nn` deliberately has no telemetry dependency — it is the numeric
//! substrate. Callers that want per-epoch progress (loss curves, epoch
//! wall time) implement [`TrainObserver`] and pass it to
//! `TokenLstm::train_observed` / `VectorLstm::train_observed`; `desh-core`
//! provides an adapter that forwards into a `desh-obs` registry. The plain
//! `train` methods use [`NoopObserver`] and cost nothing extra.

use std::time::Duration;

/// Receives one callback per completed training epoch.
pub trait TrainObserver {
    /// `epoch` is zero-based; `mean_loss` is the epoch's mean batch loss;
    /// `elapsed` is the epoch's wall time.
    fn on_epoch(&mut self, epoch: usize, mean_loss: f64, elapsed: Duration);
}

/// Observer that ignores everything (the default for `train`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl TrainObserver for NoopObserver {
    fn on_epoch(&mut self, _epoch: usize, _mean_loss: f64, _elapsed: Duration) {}
}

/// Observer that retains `(mean_loss, elapsed)` per epoch — handy in
/// tests and small tools that want the curve without a metrics registry.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// One `(mean_loss, elapsed)` entry per epoch, in order.
    pub epochs: Vec<(f64, Duration)>,
}

impl TrainObserver for RecordingObserver {
    fn on_epoch(&mut self, _epoch: usize, mean_loss: f64, elapsed: Duration) {
        self.epochs.push((mean_loss, elapsed));
    }
}

impl<F: FnMut(usize, f64, Duration)> TrainObserver for F {
    fn on_epoch(&mut self, epoch: usize, mean_loss: f64, elapsed: Duration) {
        self(epoch, mean_loss, elapsed)
    }
}
