//! Runtime-dispatched SIMD micro-kernels for the GEMM/GEMV hot paths and
//! the fused LSTM/GRU gate activations.
//!
//! Every kernel here exists in (up to) three variants selected once per
//! process by [`backend`]:
//!
//! * **scalar** — byte-for-byte the loops the pure-Rust kernels have always
//!   used, so forcing `DESH_SIMD=off` reproduces historical results
//!   bit-identically.
//! * **avx2+fma** (x86_64) — 8-wide `__m256` lanes with FMA contraction
//!   and a polynomial `exp` for the gate sigmoids/tanhs.
//! * **neon** (aarch64) — the same shapes on 2×4-wide `float32x4_t` lanes.
//!
//! Dispatch is a relaxed atomic load plus a jump, resolved from CPU feature
//! detection on first use and overridable two ways: the `DESH_SIMD`
//! environment variable (`off`/`scalar` forces the fallback — this is what
//! the CI scalar leg sets) and [`set_backend`] for in-process A/B use by
//! benches and property tests.
//!
//! Numerical contract: the scalar backend is exact legacy behaviour. The
//! SIMD backends may reassociate GEMM sums (FMA) and use an `exp`
//! polynomial accurate to ~1 ulp×10 for the activations; every variant
//! stays inside the f64 triple-loop oracle tolerances enforced by
//! `crates/nn/tests/proptests.rs`. Within one backend the *same* per-element
//! gate formula is used by both the inference scratch path and the training
//! tape path, so the two stay bit-identical to each other — a property the
//! cross-path `assert_eq!` tests in `lstm.rs`/`models.rs` rely on.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel family is active. `Neon` only ever resolves on aarch64 and
/// `Avx2Fma` only on x86_64 with AVX2+FMA advertised; [`set_backend`]
/// clamps unsupported requests to [`Backend::Scalar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Legacy pure-Rust loops (bit-identical to the pre-SIMD kernels).
    Scalar,
    /// 8-wide AVX2 + FMA (x86_64).
    Avx2Fma,
    /// 4-wide NEON (aarch64).
    Neon,
}

impl Backend {
    /// Stable short label used in provenance lines and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2Fma => "avx2+fma",
            Backend::Neon => "neon",
        }
    }

    /// Numeric code exported through the `nn.kernel_backend` gauge
    /// (0 = scalar, 1 = avx2+fma, 2 = neon).
    pub fn code(self) -> u8 {
        match self {
            Backend::Scalar => 0,
            Backend::Avx2Fma => 1,
            Backend::Neon => 2,
        }
    }
}

/// 0 = unresolved; otherwise `Backend::code() + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn detect() -> Backend {
    match std::env::var("DESH_SIMD").as_deref() {
        Ok("off") | Ok("scalar") | Ok("0") => return Backend::Scalar,
        Ok("avx2") | Ok("neon") | Ok("auto") | Ok(_) | Err(_) => {}
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Backend::Avx2Fma;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is baseline on aarch64.
        return Backend::Neon;
    }
    #[allow(unreachable_code)]
    Backend::Scalar
}

fn supported(b: Backend) -> bool {
    match b {
        Backend::Scalar => true,
        Backend::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                false
            }
        }
        Backend::Neon => cfg!(target_arch = "aarch64"),
    }
}

/// The active kernel backend, resolving it on first call.
pub fn backend() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Avx2Fma,
        3 => Backend::Neon,
        _ => {
            let b = detect();
            ACTIVE.store(b.code() + 1, Ordering::Relaxed);
            b
        }
    }
}

/// Force a backend for the rest of the process (benches and property tests
/// use this to compare variants in one run). Requests the host cannot
/// execute are clamped to scalar; returns the backend actually installed.
pub fn set_backend(b: Backend) -> Backend {
    let b = if supported(b) { b } else { Backend::Scalar };
    ACTIVE.store(b.code() + 1, Ordering::Relaxed);
    b
}

/// Short label of the active backend (`scalar` / `avx2+fma` / `neon`).
pub fn backend_name() -> &'static str {
    backend().name()
}

// ---------------------------------------------------------------------------
// Dispatch wrappers
// ---------------------------------------------------------------------------

macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {
        match backend() {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2Fma => unsafe { avx2::$name($($arg),*) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::$name($($arg),*) },
            _ => scalar::$name($($arg),*),
        }
    };
}

/// Dense-row GEMV accumulate: `out[0..n] += a (len k) @ B[:, lo..lo+n]`
/// where `b` has row stride `bcols`.
pub(crate) fn gemv_dense_acc(
    a: &[f32],
    b: &[f32],
    bcols: usize,
    lo: usize,
    n: usize,
    out: &mut [f32],
) {
    dispatch!(gemv_dense_acc(a, b, bcols, lo, n, out))
}

/// Fused two-row twin of [`gemv_dense_acc`]: one sweep of `B` feeds both
/// rows' accumulators. Every output element still folds the identical
/// k-ascending chain the single-row kernel uses, so each row's result is
/// bit-for-bit what two single-row calls produce — only the `B` loads are
/// shared. Rows must not alias.
pub(crate) fn gemv_dense_acc2(
    a: [&[f32]; 2],
    b: &[f32],
    bcols: usize,
    lo: usize,
    n: usize,
    out: [&mut [f32]; 2],
) {
    dispatch!(gemv_dense_acc2(a, b, bcols, lo, n, out))
}

/// Four-row twin of [`gemv_dense_acc2`]; same bit-exactness contract,
/// quarter the `B` traffic.
pub(crate) fn gemv_dense_acc4(
    a: [&[f32]; 4],
    b: &[f32],
    bcols: usize,
    lo: usize,
    n: usize,
    out: [&mut [f32]; 4],
) {
    dispatch!(gemv_dense_acc4(a, b, bcols, lo, n, out))
}

/// The MR×NR register-tiled micro-kernel over packed panels; see
/// `mat.rs` for the packing layout.
#[allow(clippy::too_many_arguments)] // BLAS-style kernel signature
pub(crate) fn microkernel_acc(
    pa: &[f32],
    pb: &[f32],
    kb: usize,
    rows: &mut [f32],
    ldc: usize,
    j0: usize,
    mb: usize,
    nb: usize,
) {
    dispatch!(microkernel_acc(pa, pb, kb, rows, ldc, j0, mb, nb))
}

/// Contiguous dot product (the `A @ Bᵀ` small-shape kernel).
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    dispatch!(dot(a, b))
}

/// Int8-weight GEMV accumulate with f32 accumulation:
/// `out[0..n] += Σ_k a[k] · scale · q[k, lo..lo+n]` where `q` has row
/// stride `qcols`. The per-tensor `scale` is folded into the broadcast
/// activation, so the inner loop is widen-convert + FMA.
pub(crate) fn gemv_i8_acc(
    a: &[f32],
    q: &[i8],
    qcols: usize,
    lo: usize,
    n: usize,
    scale: f32,
    out: &mut [f32],
) {
    dispatch!(gemv_i8_acc(a, q, qcols, lo, n, scale, out))
}

/// Fused LSTM gate activations for one batch row of the inference path:
/// reads the `[i|f|g|o]` pre-activation row (len `4*hsz`) and updates the
/// cell and hidden rows in place.
pub(crate) fn lstm_gates_step(pre: &[f32], c: &mut [f32], h: &mut [f32]) {
    dispatch!(lstm_gates_step(pre, c, h))
}

/// Fused LSTM gate activations for one batch row of the training path:
/// same math as [`lstm_gates_step`] but materialises i/f/g/o/c/h for the
/// tape.
#[allow(clippy::too_many_arguments)] // one output row per gate tensor
pub(crate) fn lstm_gates_train(
    pre: &[f32],
    c_prev: &[f32],
    i: &mut [f32],
    f: &mut [f32],
    g: &mut [f32],
    o: &mut [f32],
    c: &mut [f32],
    h: &mut [f32],
) {
    dispatch!(lstm_gates_train(pre, c_prev, i, f, g, o, c, h))
}

/// Fused GRU reset-gate pass (inference): `rh[k] = σ(pr[k]+hw[k])·hp[k]`.
pub(crate) fn gru_rh_step(pr: &[f32], hw: &[f32], hp: &[f32], rh: &mut [f32]) {
    dispatch!(gru_rh_step(pr, hw, hp, rh))
}

/// Fused GRU update/candidate combine (inference):
/// `h[k] = (1−z)·n + z·h[k]` with `z = σ(pr[hsz+k]+hw[hsz+k])` and
/// `n = tanh(pr[2·hsz+k]+rhn[k])`.
pub(crate) fn gru_combine_step(pr: &[f32], hw: &[f32], rhn: &[f32], h: &mut [f32]) {
    dispatch!(gru_combine_step(pr, hw, rhn, h))
}

/// Fused GRU reset/update gates for the training tape: stores r, z and
/// `rh = r ⊙ h_prev`.
pub(crate) fn gru_gates_train_rz(
    pr: &[f32],
    hw: &[f32],
    hp: &[f32],
    r: &mut [f32],
    z: &mut [f32],
    rh: &mut [f32],
) {
    dispatch!(gru_gates_train_rz(pr, hw, hp, r, z, rh))
}

/// Fused GRU candidate/output for the training tape: stores n and h from
/// the already-computed z row.
pub(crate) fn gru_gates_train_nh(
    pr: &[f32],
    rhn: &[f32],
    hp: &[f32],
    z: &[f32],
    n: &mut [f32],
    h: &mut [f32],
) {
    dispatch!(gru_gates_train_nh(pr, rhn, hp, z, n, h))
}

// ---------------------------------------------------------------------------
// Scalar backend: byte-for-byte the historical pure-Rust loops
// ---------------------------------------------------------------------------

mod scalar {
    use crate::act::sigmoid;
    use crate::mat::{MR, NR};

    pub(super) fn gemv_dense_acc(
        a: &[f32],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let k = a.len();
        let out = &mut out[..n];
        // Dense row: 4-way k unrolling keeps four B rows streaming per
        // pass over `out`, quartering the number of read-modify-write
        // sweeps.
        let mut kk = 0;
        while kk + 4 <= k {
            let (a0, a1, a2, a3) = (a[kk], a[kk + 1], a[kk + 2], a[kk + 3]);
            let r0 = &b[kk * bcols + lo..kk * bcols + lo + n];
            let r1 = &b[(kk + 1) * bcols + lo..(kk + 1) * bcols + lo + n];
            let r2 = &b[(kk + 2) * bcols + lo..(kk + 2) * bcols + lo + n];
            let r3 = &b[(kk + 3) * bcols + lo..(kk + 3) * bcols + lo + n];
            #[allow(clippy::needless_range_loop)]
            for j in 0..n {
                out[j] += a0 * r0[j] + a1 * r1[j] + a2 * r2[j] + a3 * r3[j];
            }
            kk += 4;
        }
        for kk in kk..k {
            let av = a[kk];
            let brow = &b[kk * bcols + lo..kk * bcols + lo + n];
            for (o, &bv) in out.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }

    // The scalar backend has no load-bandwidth story to optimise, so the
    // fused multi-row forms are literally per-row calls (which is also
    // what makes them trivially bit-identical to the single-row kernel).
    pub(super) fn gemv_dense_acc2(
        a: [&[f32]; 2],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: [&mut [f32]; 2],
    ) {
        for (ar, or) in a.into_iter().zip(out) {
            gemv_dense_acc(ar, b, bcols, lo, n, or);
        }
    }

    pub(super) fn gemv_dense_acc4(
        a: [&[f32]; 4],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: [&mut [f32]; 4],
    ) {
        for (ar, or) in a.into_iter().zip(out) {
            gemv_dense_acc(ar, b, bcols, lo, n, or);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn microkernel_acc(
        pa: &[f32],
        pb: &[f32],
        kb: usize,
        rows: &mut [f32],
        ldc: usize,
        j0: usize,
        mb: usize,
        nb: usize,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for kk in 0..kb {
            let av = &pa[kk * MR..kk * MR + MR];
            let bv = &pb[kk * NR..kk * NR + NR];
            for r in 0..MR {
                let ar = av[r];
                for j in 0..NR {
                    acc[r][j] += ar * bv[j];
                }
            }
        }
        for r in 0..mb {
            let orow = &mut rows[r * ldc + j0..r * ldc + j0 + nb];
            for (o, v) in orow.iter_mut().zip(acc[r].iter()) {
                *o += v;
            }
        }
    }

    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = [0.0f32; 8];
        let chunks = a.len() / 8;
        for c in 0..chunks {
            let av = &a[c * 8..c * 8 + 8];
            let bv = &b[c * 8..c * 8 + 8];
            for j in 0..8 {
                acc[j] += av[j] * bv[j];
            }
        }
        let mut s =
            ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
        for i in chunks * 8..a.len() {
            s += a[i] * b[i];
        }
        s
    }

    pub(super) fn gemv_i8_acc(
        a: &[f32],
        q: &[i8],
        qcols: usize,
        lo: usize,
        n: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        let out = &mut out[..n];
        for (kk, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let av = av * scale;
            let qrow = &q[kk * qcols + lo..kk * qcols + lo + n];
            for (o, &qv) in out.iter_mut().zip(qrow) {
                *o += av * qv as f32;
            }
        }
    }

    pub(super) fn lstm_gates_step(pre: &[f32], c: &mut [f32], h: &mut [f32]) {
        let hsz = c.len();
        for k in 0..hsz {
            let i = sigmoid(pre[k]);
            let f = sigmoid(pre[hsz + k]);
            let g = pre[2 * hsz + k].tanh();
            let o = sigmoid(pre[3 * hsz + k]);
            let cv = f * c[k] + i * g;
            c[k] = cv;
            h[k] = o * cv.tanh();
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn lstm_gates_train(
        pre: &[f32],
        c_prev: &[f32],
        i: &mut [f32],
        f: &mut [f32],
        g: &mut [f32],
        o: &mut [f32],
        c: &mut [f32],
        h: &mut [f32],
    ) {
        let hsz = c_prev.len();
        for k in 0..hsz {
            // Identical scalar expressions to `lstm_gates_step`, so the
            // tape path and the scratch path agree bitwise.
            let iv = sigmoid(pre[k]);
            let fv = sigmoid(pre[hsz + k]);
            let gv = pre[2 * hsz + k].tanh();
            let ov = sigmoid(pre[3 * hsz + k]);
            let cv = fv * c_prev[k] + iv * gv;
            i[k] = iv;
            f[k] = fv;
            g[k] = gv;
            o[k] = ov;
            c[k] = cv;
            h[k] = ov * cv.tanh();
        }
    }

    pub(super) fn gru_rh_step(pr: &[f32], hw: &[f32], hp: &[f32], rh: &mut [f32]) {
        for k in 0..rh.len() {
            rh[k] = sigmoid(pr[k] + hw[k]) * hp[k];
        }
    }

    pub(super) fn gru_combine_step(pr: &[f32], hw: &[f32], rhn: &[f32], h: &mut [f32]) {
        let hsz = h.len();
        for k in 0..hsz {
            let zv = sigmoid(pr[hsz + k] + hw[hsz + k]);
            let nv = (pr[2 * hsz + k] + rhn[k]).tanh();
            h[k] = (1.0 - zv) * nv + zv * h[k];
        }
    }

    pub(super) fn gru_gates_train_rz(
        pr: &[f32],
        hw: &[f32],
        hp: &[f32],
        r: &mut [f32],
        z: &mut [f32],
        rh: &mut [f32],
    ) {
        let hsz = rh.len();
        for k in 0..hsz {
            let rv = sigmoid(pr[k] + hw[k]);
            r[k] = rv;
            z[k] = sigmoid(pr[hsz + k] + hw[hsz + k]);
            rh[k] = rv * hp[k];
        }
    }

    pub(super) fn gru_gates_train_nh(
        pr: &[f32],
        rhn: &[f32],
        hp: &[f32],
        z: &[f32],
        n: &mut [f32],
        h: &mut [f32],
    ) {
        let hsz = h.len();
        for k in 0..hsz {
            let nv = (pr[2 * hsz + k] + rhn[k]).tanh();
            n[k] = nv;
            let zv = z[k];
            h[k] = (1.0 - zv) * nv + zv * hp[k];
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 + FMA backend (x86_64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use crate::act::sigmoid;
    use crate::mat::{MR, NR};
    use std::arch::x86_64::*;

    // Cephes-style polynomial exp, the standard 8-wide f32 kernel
    // (max relative error ~2e-7 over the clamped domain).
    const EXP_HI: f32 = 88.376_26;
    const EXP_LO: f32 = -88.376_26;
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_6e-2;
    const P4: f32 = 1.666_666_5e-1;
    const P5: f32 = 5.000_000_3e-1;

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp8(x: __m256) -> __m256 {
        let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
        let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
        // n = floor(x · log2(e) + 0.5)
        let fx = _mm256_fmadd_ps(x, _mm256_set1_ps(LOG2EF), _mm256_set1_ps(0.5));
        let fx = _mm256_floor_ps(fx);
        // r = x − n·ln2 in two pieces for precision.
        let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(LN2_HI), x);
        let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(LN2_LO), x);
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(P0);
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P2));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P4));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(P5));
        y = _mm256_fmadd_ps(y, z, x);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // y · 2ⁿ via exponent-field construction.
        let n = _mm256_cvttps_epi32(fx);
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            n,
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(y, pow2n)
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn sigmoid8(x: __m256) -> __m256 {
        // 1 / (1 + exp(−x)); exp saturates finite at the clamp, so no NaN.
        let e = exp8(_mm256_sub_ps(_mm256_setzero_ps(), x));
        _mm256_div_ps(_mm256_set1_ps(1.0), _mm256_add_ps(_mm256_set1_ps(1.0), e))
    }

    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn tanh8(x: __m256) -> __m256 {
        // tanh(x) = (e^{2x} − 1) / (e^{2x} + 1), with |x| clamped to 9
        // where f32 tanh is already saturated, keeping e^{2x} finite.
        let x = _mm256_min_ps(x, _mm256_set1_ps(9.0));
        let x = _mm256_max_ps(x, _mm256_set1_ps(-9.0));
        let e = exp8(_mm256_add_ps(x, x));
        let one = _mm256_set1_ps(1.0);
        _mm256_div_ps(_mm256_sub_ps(e, one), _mm256_add_ps(e, one))
    }

    /// Batch-1 dense GEMV, register-blocked on the output columns: the
    /// accumulators for a block live in ymm registers across the whole
    /// `k` loop, so `out` is touched once per block rather than once per
    /// pass, and the independent FMA chains (eight per 64-column block)
    /// hide the FMA latency that a load/modify/store sweep serialises on.
    /// The compiler auto-vectorises the scalar fallback to SSE width, so
    /// this structure — not just wider lanes — is where the speedup over
    /// the scalar backend comes from.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemv_dense_acc(
        a: &[f32],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let k = a.len();
        let out = &mut out[..n];
        let ap = a.as_ptr();
        let bp = b.as_ptr().add(lo);
        let op = out.as_mut_ptr();
        let mut j = 0;
        // Prefetch pays only once B spills L1d (~48 KiB on current parts)
        // and rows start arriving from L2; on L1-resident matrices the
        // extra load-port µops just steal slots from the FMA-feeding loads.
        let spills_l1 = k * bcols * 4 > 48 * 1024;
        // 64-column blocks: eight independent accumulators.
        while j + 64 <= n {
            let mut acc = [_mm256_setzero_ps(); 8];
            for (v, accv) in acc.iter_mut().enumerate() {
                *accv = _mm256_loadu_ps(op.add(j + 8 * v));
            }
            for kk in 0..k {
                let av = _mm256_set1_ps(*ap.add(kk));
                let row = bp.add(kk * bcols + j);
                // Pull the row a few k-steps ahead toward L1: once B
                // spills L1d the loop runs at L2 bandwidth, so keeping
                // misses outstanding is worth the extra load µops.
                if spills_l1 && kk + 6 < k {
                    let pf = bp.add((kk + 6) * bcols + j) as *const i8;
                    _mm_prefetch(pf, _MM_HINT_T0);
                    _mm_prefetch(pf.add(64), _MM_HINT_T0);
                    _mm_prefetch(pf.add(128), _MM_HINT_T0);
                    _mm_prefetch(pf.add(192), _MM_HINT_T0);
                }
                for (v, accv) in acc.iter_mut().enumerate() {
                    *accv = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(8 * v)), *accv);
                }
            }
            for (v, accv) in acc.iter().enumerate() {
                _mm256_storeu_ps(op.add(j + 8 * v), *accv);
            }
            j += 64;
        }
        // 32-column blocks: four output vectors × an even/odd k split
        // keeps eight FMA chains in flight.
        while j + 32 <= n {
            let mut even = [_mm256_setzero_ps(); 4];
            let mut odd = [_mm256_setzero_ps(); 4];
            for (v, ev) in even.iter_mut().enumerate() {
                *ev = _mm256_loadu_ps(op.add(j + 8 * v));
            }
            let mut kk = 0;
            while kk + 2 <= k {
                let av0 = _mm256_set1_ps(*ap.add(kk));
                let av1 = _mm256_set1_ps(*ap.add(kk + 1));
                let row0 = bp.add(kk * bcols + j);
                let row1 = bp.add((kk + 1) * bcols + j);
                for v in 0..4 {
                    even[v] = _mm256_fmadd_ps(av0, _mm256_loadu_ps(row0.add(8 * v)), even[v]);
                    odd[v] = _mm256_fmadd_ps(av1, _mm256_loadu_ps(row1.add(8 * v)), odd[v]);
                }
                kk += 2;
            }
            if kk < k {
                let av = _mm256_set1_ps(*ap.add(kk));
                let row = bp.add(kk * bcols + j);
                for (v, ev) in even.iter_mut().enumerate() {
                    *ev = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(8 * v)), *ev);
                }
            }
            for v in 0..4 {
                _mm256_storeu_ps(op.add(j + 8 * v), _mm256_add_ps(even[v], odd[v]));
            }
            j += 32;
        }
        // 16-column blocks for the midfield. Two output vectors alone
        // would leave only two FMA chains in flight, so `k` is split
        // across even/odd accumulator pairs (four chains) and the pairs
        // summed once at the end.
        while j + 16 <= n {
            let mut acc0 = _mm256_loadu_ps(op.add(j));
            let mut acc1 = _mm256_loadu_ps(op.add(j + 8));
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut kk = 0;
            while kk + 2 <= k {
                let av0 = _mm256_set1_ps(*ap.add(kk));
                let av1 = _mm256_set1_ps(*ap.add(kk + 1));
                let row0 = bp.add(kk * bcols + j);
                let row1 = bp.add((kk + 1) * bcols + j);
                acc0 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(row0), acc0);
                acc1 = _mm256_fmadd_ps(av0, _mm256_loadu_ps(row0.add(8)), acc1);
                acc2 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(row1), acc2);
                acc3 = _mm256_fmadd_ps(av1, _mm256_loadu_ps(row1.add(8)), acc3);
                kk += 2;
            }
            if kk < k {
                let av = _mm256_set1_ps(*ap.add(kk));
                let row = bp.add(kk * bcols + j);
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row), acc0);
                acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(row.add(8)), acc1);
            }
            _mm256_storeu_ps(op.add(j), _mm256_add_ps(acc0, acc2));
            _mm256_storeu_ps(op.add(j + 8), _mm256_add_ps(acc1, acc3));
            j += 16;
        }
        // Final 8-column block: a single output vector would serialise
        // the FMA chain, so split `k` across four accumulators instead.
        while j + 8 <= n {
            let mut acc0 = _mm256_loadu_ps(op.add(j));
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut kk = 0;
            while kk + 4 <= k {
                let row0 = bp.add(kk * bcols + j);
                let row1 = bp.add((kk + 1) * bcols + j);
                let row2 = bp.add((kk + 2) * bcols + j);
                let row3 = bp.add((kk + 3) * bcols + j);
                acc0 = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(kk)), _mm256_loadu_ps(row0), acc0);
                acc1 =
                    _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(kk + 1)), _mm256_loadu_ps(row1), acc1);
                acc2 =
                    _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(kk + 2)), _mm256_loadu_ps(row2), acc2);
                acc3 =
                    _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(kk + 3)), _mm256_loadu_ps(row3), acc3);
                kk += 4;
            }
            for kk in kk..k {
                let av = _mm256_set1_ps(*ap.add(kk));
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(kk * bcols + j)), acc0);
            }
            let sum = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
            _mm256_storeu_ps(op.add(j), sum);
            j += 8;
        }
        // Scalar tail for the last n % 8 columns.
        if j < n {
            for kk in 0..k {
                let av = *ap.add(kk);
                let row = bp.add(kk * bcols);
                for (jj, o) in out.iter_mut().enumerate().skip(j) {
                    *o += av * *row.add(jj);
                }
            }
        }
    }

    /// Fused two-row GEMV: 32-column blocks, both rows' accumulators live
    /// across one shared k sweep of `B`, halving the weight-load traffic
    /// that bounds the batch-1 kernel once `B` spills L1d. Each output
    /// element folds the same straight k-ascending FMA chain as the
    /// single-row kernel's 64-column path, so the fused form is only
    /// taken when `n % 64 == 0` — i.e. when the single-row kernel would
    /// use that path for every column — and is then bit-identical per
    /// row. Other widths (where the single-row kernel switches to
    /// even/odd k-split accumulators) fall back to per-row calls.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemv_dense_acc2(
        a: [&[f32]; 2],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: [&mut [f32]; 2],
    ) {
        let [a0, a1] = a;
        let [o0, o1] = out;
        if !n.is_multiple_of(64) {
            gemv_dense_acc(a0, b, bcols, lo, n, o0);
            gemv_dense_acc(a1, b, bcols, lo, n, o1);
            return;
        }
        let k = a0.len();
        debug_assert_eq!(a1.len(), k);
        let (ap0, ap1) = (a0.as_ptr(), a1.as_ptr());
        let bp = b.as_ptr().add(lo);
        let (op0, op1) = (o0.as_mut_ptr(), o1.as_mut_ptr());
        let spills_l1 = k * bcols * 4 > 48 * 1024;
        let mut j = 0;
        while j + 32 <= n {
            let mut acc0 = [_mm256_setzero_ps(); 4];
            let mut acc1 = [_mm256_setzero_ps(); 4];
            for v in 0..4 {
                acc0[v] = _mm256_loadu_ps(op0.add(j + 8 * v));
                acc1[v] = _mm256_loadu_ps(op1.add(j + 8 * v));
            }
            for kk in 0..k {
                let av0 = _mm256_set1_ps(*ap0.add(kk));
                let av1 = _mm256_set1_ps(*ap1.add(kk));
                let row = bp.add(kk * bcols + j);
                if spills_l1 && kk + 6 < k {
                    let pf = bp.add((kk + 6) * bcols + j) as *const i8;
                    _mm_prefetch(pf, _MM_HINT_T0);
                    _mm_prefetch(pf.add(64), _MM_HINT_T0);
                }
                for v in 0..4 {
                    let bv = _mm256_loadu_ps(row.add(8 * v));
                    acc0[v] = _mm256_fmadd_ps(av0, bv, acc0[v]);
                    acc1[v] = _mm256_fmadd_ps(av1, bv, acc1[v]);
                }
            }
            for v in 0..4 {
                _mm256_storeu_ps(op0.add(j + 8 * v), acc0[v]);
                _mm256_storeu_ps(op1.add(j + 8 * v), acc1[v]);
            }
            j += 32;
        }
    }

    /// Fused four-row GEMV: 16-column blocks, four rows per shared `B`
    /// sweep (quarter traffic). Same contract as [`gemv_dense_acc2`]:
    /// straight k-ascending folds, fused only when `n % 64 == 0`,
    /// bit-identical per row to the single-row kernel.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemv_dense_acc4(
        a: [&[f32]; 4],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: [&mut [f32]; 4],
    ) {
        if !n.is_multiple_of(64) {
            for (ar, or) in a.into_iter().zip(out) {
                gemv_dense_acc(ar, b, bcols, lo, n, or);
            }
            return;
        }
        let k = a[0].len();
        debug_assert!(a.iter().all(|r| r.len() == k));
        let aps = [a[0].as_ptr(), a[1].as_ptr(), a[2].as_ptr(), a[3].as_ptr()];
        let bp = b.as_ptr().add(lo);
        let [o0, o1, o2, o3] = out;
        let ops = [
            o0.as_mut_ptr(),
            o1.as_mut_ptr(),
            o2.as_mut_ptr(),
            o3.as_mut_ptr(),
        ];
        let spills_l1 = k * bcols * 4 > 48 * 1024;
        let mut j = 0;
        while j + 16 <= n {
            let mut acc = [[_mm256_setzero_ps(); 2]; 4];
            for (r, accr) in acc.iter_mut().enumerate() {
                accr[0] = _mm256_loadu_ps(ops[r].add(j));
                accr[1] = _mm256_loadu_ps(ops[r].add(j + 8));
            }
            for kk in 0..k {
                let row = bp.add(kk * bcols + j);
                if spills_l1 && kk + 6 < k {
                    _mm_prefetch(bp.add((kk + 6) * bcols + j) as *const i8, _MM_HINT_T0);
                }
                let bv0 = _mm256_loadu_ps(row);
                let bv1 = _mm256_loadu_ps(row.add(8));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*aps[r].add(kk));
                    accr[0] = _mm256_fmadd_ps(av, bv0, accr[0]);
                    accr[1] = _mm256_fmadd_ps(av, bv1, accr[1]);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                _mm256_storeu_ps(ops[r].add(j), accr[0]);
                _mm256_storeu_ps(ops[r].add(j + 8), accr[1]);
            }
            j += 16;
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn microkernel_acc(
        pa: &[f32],
        pb: &[f32],
        kb: usize,
        rows: &mut [f32],
        ldc: usize,
        j0: usize,
        mb: usize,
        nb: usize,
    ) {
        debug_assert_eq!(MR, 2);
        debug_assert_eq!(NR, 8);
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let pap = pa.as_ptr();
        let pbp = pb.as_ptr();
        for kk in 0..kb {
            let bv = _mm256_loadu_ps(pbp.add(kk * NR));
            acc0 = _mm256_fmadd_ps(_mm256_set1_ps(*pap.add(kk * MR)), bv, acc0);
            acc1 = _mm256_fmadd_ps(_mm256_set1_ps(*pap.add(kk * MR + 1)), bv, acc1);
        }
        let mut buf = [[0.0f32; NR]; MR];
        _mm256_storeu_ps(buf[0].as_mut_ptr(), acc0);
        _mm256_storeu_ps(buf[1].as_mut_ptr(), acc1);
        for r in 0..mb {
            let orow = &mut rows[r * ldc + j0..r * ldc + j0 + nb];
            if nb == NR {
                let o = _mm256_add_ps(
                    _mm256_loadu_ps(orow.as_ptr()),
                    _mm256_loadu_ps(buf[r].as_ptr()),
                );
                _mm256_storeu_ps(orow.as_mut_ptr(), o);
            } else {
                for (o, v) in orow.iter_mut().zip(buf[r].iter()) {
                    *o += v;
                }
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let n16 = n - n % 16;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0;
        while i < n16 {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            i += 16;
        }
        let mut acc = _mm256_add_ps(acc0, acc1);
        while i + 8 <= n {
            acc = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc);
            i += 8;
        }
        let hi = _mm256_extractf128_ps::<1>(acc);
        let lo = _mm256_castps256_ps128(acc);
        let s4 = _mm_add_ps(hi, lo);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        let s1 = _mm_add_ss(s2, _mm_shuffle_ps::<1>(s2, s2));
        let mut s = _mm_cvtss_f32(s1);
        for j in i..n {
            s += a[j] * b[j];
        }
        s
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gemv_i8_acc(
        a: &[f32],
        q: &[i8],
        qcols: usize,
        lo: usize,
        n: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        let out = &mut out[..n];
        let n8 = n - n % 8;
        for (kk, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let avs = av * scale;
            let avv = _mm256_set1_ps(avs);
            let qrow = q.as_ptr().add(kk * qcols + lo);
            let mut j = 0;
            while j < n8 {
                // 8 × i8 → i32 → f32, then FMA into the accumulator row.
                let qi = _mm_loadl_epi64(qrow.add(j) as *const __m128i);
                let qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(qi));
                let acc = _mm256_loadu_ps(out.as_ptr().add(j));
                _mm256_storeu_ps(out.as_mut_ptr().add(j), _mm256_fmadd_ps(avv, qf, acc));
                j += 8;
            }
            for (j, o) in out.iter_mut().enumerate().skip(n8) {
                *o += avs * *qrow.add(j) as f32;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lstm_gates_step(pre: &[f32], c: &mut [f32], h: &mut [f32]) {
        let hsz = c.len();
        let h8 = hsz - hsz % 8;
        let pp = pre.as_ptr();
        let mut k = 0;
        while k < h8 {
            let i = sigmoid8(_mm256_loadu_ps(pp.add(k)));
            let f = sigmoid8(_mm256_loadu_ps(pp.add(hsz + k)));
            let g = tanh8(_mm256_loadu_ps(pp.add(2 * hsz + k)));
            let o = sigmoid8(_mm256_loadu_ps(pp.add(3 * hsz + k)));
            let cv = _mm256_fmadd_ps(f, _mm256_loadu_ps(c.as_ptr().add(k)), _mm256_mul_ps(i, g));
            _mm256_storeu_ps(c.as_mut_ptr().add(k), cv);
            _mm256_storeu_ps(h.as_mut_ptr().add(k), _mm256_mul_ps(o, tanh8(cv)));
            k += 8;
        }
        for k in h8..hsz {
            let i = sigmoid(pre[k]);
            let f = sigmoid(pre[hsz + k]);
            let g = pre[2 * hsz + k].tanh();
            let o = sigmoid(pre[3 * hsz + k]);
            let cv = f * c[k] + i * g;
            c[k] = cv;
            h[k] = o * cv.tanh();
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lstm_gates_train(
        pre: &[f32],
        c_prev: &[f32],
        i: &mut [f32],
        f: &mut [f32],
        g: &mut [f32],
        o: &mut [f32],
        c: &mut [f32],
        h: &mut [f32],
    ) {
        let hsz = c_prev.len();
        let h8 = hsz - hsz % 8;
        let pp = pre.as_ptr();
        let mut k = 0;
        while k < h8 {
            // Same lane math as `lstm_gates_step`, so tape and scratch
            // paths agree bitwise under this backend too.
            let iv = sigmoid8(_mm256_loadu_ps(pp.add(k)));
            let fv = sigmoid8(_mm256_loadu_ps(pp.add(hsz + k)));
            let gv = tanh8(_mm256_loadu_ps(pp.add(2 * hsz + k)));
            let ov = sigmoid8(_mm256_loadu_ps(pp.add(3 * hsz + k)));
            let cv = _mm256_fmadd_ps(
                fv,
                _mm256_loadu_ps(c_prev.as_ptr().add(k)),
                _mm256_mul_ps(iv, gv),
            );
            _mm256_storeu_ps(i.as_mut_ptr().add(k), iv);
            _mm256_storeu_ps(f.as_mut_ptr().add(k), fv);
            _mm256_storeu_ps(g.as_mut_ptr().add(k), gv);
            _mm256_storeu_ps(o.as_mut_ptr().add(k), ov);
            _mm256_storeu_ps(c.as_mut_ptr().add(k), cv);
            _mm256_storeu_ps(h.as_mut_ptr().add(k), _mm256_mul_ps(ov, tanh8(cv)));
            k += 8;
        }
        for k in h8..hsz {
            let iv = sigmoid(pre[k]);
            let fv = sigmoid(pre[hsz + k]);
            let gv = pre[2 * hsz + k].tanh();
            let ov = sigmoid(pre[3 * hsz + k]);
            let cv = fv * c_prev[k] + iv * gv;
            i[k] = iv;
            f[k] = fv;
            g[k] = gv;
            o[k] = ov;
            c[k] = cv;
            h[k] = ov * cv.tanh();
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gru_rh_step(pr: &[f32], hw: &[f32], hp: &[f32], rh: &mut [f32]) {
        let hsz = rh.len();
        let h8 = hsz - hsz % 8;
        let mut k = 0;
        while k < h8 {
            let r = sigmoid8(_mm256_add_ps(
                _mm256_loadu_ps(pr.as_ptr().add(k)),
                _mm256_loadu_ps(hw.as_ptr().add(k)),
            ));
            _mm256_storeu_ps(
                rh.as_mut_ptr().add(k),
                _mm256_mul_ps(r, _mm256_loadu_ps(hp.as_ptr().add(k))),
            );
            k += 8;
        }
        for k in h8..hsz {
            rh[k] = sigmoid(pr[k] + hw[k]) * hp[k];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gru_combine_step(pr: &[f32], hw: &[f32], rhn: &[f32], h: &mut [f32]) {
        let hsz = h.len();
        let h8 = hsz - hsz % 8;
        let one = _mm256_set1_ps(1.0);
        let mut k = 0;
        while k < h8 {
            let z = sigmoid8(_mm256_add_ps(
                _mm256_loadu_ps(pr.as_ptr().add(hsz + k)),
                _mm256_loadu_ps(hw.as_ptr().add(hsz + k)),
            ));
            let n = tanh8(_mm256_add_ps(
                _mm256_loadu_ps(pr.as_ptr().add(2 * hsz + k)),
                _mm256_loadu_ps(rhn.as_ptr().add(k)),
            ));
            let hv = _mm256_loadu_ps(h.as_ptr().add(k));
            let nv = _mm256_mul_ps(_mm256_sub_ps(one, z), n);
            _mm256_storeu_ps(h.as_mut_ptr().add(k), _mm256_fmadd_ps(z, hv, nv));
            k += 8;
        }
        for k in h8..hsz {
            let zv = sigmoid(pr[hsz + k] + hw[hsz + k]);
            let nv = (pr[2 * hsz + k] + rhn[k]).tanh();
            h[k] = (1.0 - zv) * nv + zv * h[k];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gru_gates_train_rz(
        pr: &[f32],
        hw: &[f32],
        hp: &[f32],
        r: &mut [f32],
        z: &mut [f32],
        rh: &mut [f32],
    ) {
        let hsz = rh.len();
        let h8 = hsz - hsz % 8;
        let mut k = 0;
        while k < h8 {
            let rv = sigmoid8(_mm256_add_ps(
                _mm256_loadu_ps(pr.as_ptr().add(k)),
                _mm256_loadu_ps(hw.as_ptr().add(k)),
            ));
            let zv = sigmoid8(_mm256_add_ps(
                _mm256_loadu_ps(pr.as_ptr().add(hsz + k)),
                _mm256_loadu_ps(hw.as_ptr().add(hsz + k)),
            ));
            _mm256_storeu_ps(r.as_mut_ptr().add(k), rv);
            _mm256_storeu_ps(z.as_mut_ptr().add(k), zv);
            _mm256_storeu_ps(
                rh.as_mut_ptr().add(k),
                _mm256_mul_ps(rv, _mm256_loadu_ps(hp.as_ptr().add(k))),
            );
            k += 8;
        }
        for k in h8..hsz {
            let rv = sigmoid(pr[k] + hw[k]);
            r[k] = rv;
            z[k] = sigmoid(pr[hsz + k] + hw[hsz + k]);
            rh[k] = rv * hp[k];
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gru_gates_train_nh(
        pr: &[f32],
        rhn: &[f32],
        hp: &[f32],
        z: &[f32],
        n: &mut [f32],
        h: &mut [f32],
    ) {
        let hsz = h.len();
        let h8 = hsz - hsz % 8;
        let one = _mm256_set1_ps(1.0);
        let mut k = 0;
        while k < h8 {
            let nv = tanh8(_mm256_add_ps(
                _mm256_loadu_ps(pr.as_ptr().add(2 * hsz + k)),
                _mm256_loadu_ps(rhn.as_ptr().add(k)),
            ));
            let zv = _mm256_loadu_ps(z.as_ptr().add(k));
            _mm256_storeu_ps(n.as_mut_ptr().add(k), nv);
            let mixed = _mm256_fmadd_ps(
                zv,
                _mm256_loadu_ps(hp.as_ptr().add(k)),
                _mm256_mul_ps(_mm256_sub_ps(one, zv), nv),
            );
            _mm256_storeu_ps(h.as_mut_ptr().add(k), mixed);
            k += 8;
        }
        for k in h8..hsz {
            let nv = (pr[2 * hsz + k] + rhn[k]).tanh();
            n[k] = nv;
            let zv = z[k];
            h[k] = (1.0 - zv) * nv + zv * hp[k];
        }
    }
}

// ---------------------------------------------------------------------------
// NEON backend (aarch64): same shapes on 2×4-wide lanes
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use crate::act::sigmoid;
    use crate::mat::{MR, NR};
    use std::arch::aarch64::*;

    const EXP_HI: f32 = 88.376_26;
    const EXP_LO: f32 = -88.376_26;
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_4;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_6e-2;
    const P4: f32 = 1.666_666_5e-1;
    const P5: f32 = 5.000_000_3e-1;

    #[inline]
    unsafe fn exp4(x: float32x4_t) -> float32x4_t {
        let x = vminq_f32(x, vdupq_n_f32(EXP_HI));
        let x = vmaxq_f32(x, vdupq_n_f32(EXP_LO));
        let fx = vrndmq_f32(vmlaq_f32(vdupq_n_f32(0.5), x, vdupq_n_f32(LOG2EF)));
        let x = vmlsq_f32(x, fx, vdupq_n_f32(LN2_HI));
        let x = vmlsq_f32(x, fx, vdupq_n_f32(LN2_LO));
        let z = vmulq_f32(x, x);
        let mut y = vdupq_n_f32(P0);
        y = vmlaq_f32(vdupq_n_f32(P1), y, x);
        y = vmlaq_f32(vdupq_n_f32(P2), y, x);
        y = vmlaq_f32(vdupq_n_f32(P3), y, x);
        y = vmlaq_f32(vdupq_n_f32(P4), y, x);
        y = vmlaq_f32(vdupq_n_f32(P5), y, x);
        y = vmlaq_f32(x, y, z);
        y = vaddq_f32(y, vdupq_n_f32(1.0));
        let n = vcvtq_s32_f32(fx);
        let pow2n = vreinterpretq_f32_s32(vshlq_n_s32::<23>(vaddq_s32(n, vdupq_n_s32(127))));
        vmulq_f32(y, pow2n)
    }

    #[inline]
    unsafe fn sigmoid4(x: float32x4_t) -> float32x4_t {
        let e = exp4(vnegq_f32(x));
        vdivq_f32(vdupq_n_f32(1.0), vaddq_f32(vdupq_n_f32(1.0), e))
    }

    #[inline]
    unsafe fn tanh4(x: float32x4_t) -> float32x4_t {
        let x = vminq_f32(x, vdupq_n_f32(9.0));
        let x = vmaxq_f32(x, vdupq_n_f32(-9.0));
        let e = exp4(vaddq_f32(x, x));
        let one = vdupq_n_f32(1.0);
        vdivq_f32(vsubq_f32(e, one), vaddq_f32(e, one))
    }

    pub(super) unsafe fn gemv_dense_acc(
        a: &[f32],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: &mut [f32],
    ) {
        let k = a.len();
        let out = &mut out[..n];
        let n4 = n - n % 4;
        let mut kk = 0;
        while kk + 4 <= k {
            let av0 = vdupq_n_f32(a[kk]);
            let av1 = vdupq_n_f32(a[kk + 1]);
            let av2 = vdupq_n_f32(a[kk + 2]);
            let av3 = vdupq_n_f32(a[kk + 3]);
            let r0 = b.as_ptr().add(kk * bcols + lo);
            let r1 = b.as_ptr().add((kk + 1) * bcols + lo);
            let r2 = b.as_ptr().add((kk + 2) * bcols + lo);
            let r3 = b.as_ptr().add((kk + 3) * bcols + lo);
            let mut j = 0;
            while j < n4 {
                let mut acc = vld1q_f32(out.as_ptr().add(j));
                acc = vfmaq_f32(acc, av0, vld1q_f32(r0.add(j)));
                acc = vfmaq_f32(acc, av1, vld1q_f32(r1.add(j)));
                acc = vfmaq_f32(acc, av2, vld1q_f32(r2.add(j)));
                acc = vfmaq_f32(acc, av3, vld1q_f32(r3.add(j)));
                vst1q_f32(out.as_mut_ptr().add(j), acc);
                j += 4;
            }
            let (a0, a1, a2, a3) = (a[kk], a[kk + 1], a[kk + 2], a[kk + 3]);
            for j in n4..n {
                out[j] += a0 * *r0.add(j) + a1 * *r1.add(j) + a2 * *r2.add(j) + a3 * *r3.add(j);
            }
            kk += 4;
        }
        for kk in kk..k {
            let avs = a[kk];
            let av = vdupq_n_f32(avs);
            let row = b.as_ptr().add(kk * bcols + lo);
            let mut j = 0;
            while j < n4 {
                let acc = vld1q_f32(out.as_ptr().add(j));
                vst1q_f32(
                    out.as_mut_ptr().add(j),
                    vfmaq_f32(acc, av, vld1q_f32(row.add(j))),
                );
                j += 4;
            }
            for j in n4..n {
                out[j] += avs * *row.add(j);
            }
        }
    }

    // No fused multi-row form tuned for NEON yet: per-row calls keep the
    // bit-exactness contract trivially.
    pub(super) unsafe fn gemv_dense_acc2(
        a: [&[f32]; 2],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: [&mut [f32]; 2],
    ) {
        for (ar, or) in a.into_iter().zip(out) {
            gemv_dense_acc(ar, b, bcols, lo, n, or);
        }
    }

    pub(super) unsafe fn gemv_dense_acc4(
        a: [&[f32]; 4],
        b: &[f32],
        bcols: usize,
        lo: usize,
        n: usize,
        out: [&mut [f32]; 4],
    ) {
        for (ar, or) in a.into_iter().zip(out) {
            gemv_dense_acc(ar, b, bcols, lo, n, or);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn microkernel_acc(
        pa: &[f32],
        pb: &[f32],
        kb: usize,
        rows: &mut [f32],
        ldc: usize,
        j0: usize,
        mb: usize,
        nb: usize,
    ) {
        debug_assert_eq!(MR, 2);
        debug_assert_eq!(NR, 8);
        let mut acc0a = vdupq_n_f32(0.0);
        let mut acc0b = vdupq_n_f32(0.0);
        let mut acc1a = vdupq_n_f32(0.0);
        let mut acc1b = vdupq_n_f32(0.0);
        let pap = pa.as_ptr();
        let pbp = pb.as_ptr();
        for kk in 0..kb {
            let bva = vld1q_f32(pbp.add(kk * NR));
            let bvb = vld1q_f32(pbp.add(kk * NR + 4));
            let a0 = vdupq_n_f32(*pap.add(kk * MR));
            let a1 = vdupq_n_f32(*pap.add(kk * MR + 1));
            acc0a = vfmaq_f32(acc0a, a0, bva);
            acc0b = vfmaq_f32(acc0b, a0, bvb);
            acc1a = vfmaq_f32(acc1a, a1, bva);
            acc1b = vfmaq_f32(acc1b, a1, bvb);
        }
        let mut buf = [[0.0f32; NR]; MR];
        vst1q_f32(buf[0].as_mut_ptr(), acc0a);
        vst1q_f32(buf[0].as_mut_ptr().add(4), acc0b);
        vst1q_f32(buf[1].as_mut_ptr(), acc1a);
        vst1q_f32(buf[1].as_mut_ptr().add(4), acc1b);
        for r in 0..mb {
            let orow = &mut rows[r * ldc + j0..r * ldc + j0 + nb];
            for (o, v) in orow.iter_mut().zip(buf[r].iter()) {
                *o += v;
            }
        }
    }

    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let n8 = n - n % 8;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0;
        while i < n8 {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
            i += 8;
        }
        let mut s = vaddvq_f32(vaddq_f32(acc0, acc1));
        for j in i..n {
            s += a[j] * b[j];
        }
        s
    }

    pub(super) unsafe fn gemv_i8_acc(
        a: &[f32],
        q: &[i8],
        qcols: usize,
        lo: usize,
        n: usize,
        scale: f32,
        out: &mut [f32],
    ) {
        let out = &mut out[..n];
        let n8 = n - n % 8;
        for (kk, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let avs = av * scale;
            let avv = vdupq_n_f32(avs);
            let qrow = q.as_ptr().add(kk * qcols + lo);
            let mut j = 0;
            while j < n8 {
                let qi = vld1_s8(qrow.add(j));
                let qw = vmovl_s8(qi);
                let qlo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(qw)));
                let qhi = vcvtq_f32_s32(vmovl_s16(vget_high_s16(qw)));
                let acc0 = vld1q_f32(out.as_ptr().add(j));
                let acc1 = vld1q_f32(out.as_ptr().add(j + 4));
                vst1q_f32(out.as_mut_ptr().add(j), vfmaq_f32(acc0, avv, qlo));
                vst1q_f32(out.as_mut_ptr().add(j + 4), vfmaq_f32(acc1, avv, qhi));
                j += 8;
            }
            for (j, o) in out.iter_mut().enumerate().skip(n8) {
                *o += avs * *qrow.add(j) as f32;
            }
        }
    }

    pub(super) unsafe fn lstm_gates_step(pre: &[f32], c: &mut [f32], h: &mut [f32]) {
        let hsz = c.len();
        let h4 = hsz - hsz % 4;
        let pp = pre.as_ptr();
        let mut k = 0;
        while k < h4 {
            let i = sigmoid4(vld1q_f32(pp.add(k)));
            let f = sigmoid4(vld1q_f32(pp.add(hsz + k)));
            let g = tanh4(vld1q_f32(pp.add(2 * hsz + k)));
            let o = sigmoid4(vld1q_f32(pp.add(3 * hsz + k)));
            let cv = vfmaq_f32(vmulq_f32(i, g), f, vld1q_f32(c.as_ptr().add(k)));
            vst1q_f32(c.as_mut_ptr().add(k), cv);
            vst1q_f32(h.as_mut_ptr().add(k), vmulq_f32(o, tanh4(cv)));
            k += 4;
        }
        for k in h4..hsz {
            let i = sigmoid(pre[k]);
            let f = sigmoid(pre[hsz + k]);
            let g = pre[2 * hsz + k].tanh();
            let o = sigmoid(pre[3 * hsz + k]);
            let cv = f * c[k] + i * g;
            c[k] = cv;
            h[k] = o * cv.tanh();
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn lstm_gates_train(
        pre: &[f32],
        c_prev: &[f32],
        i: &mut [f32],
        f: &mut [f32],
        g: &mut [f32],
        o: &mut [f32],
        c: &mut [f32],
        h: &mut [f32],
    ) {
        let hsz = c_prev.len();
        let h4 = hsz - hsz % 4;
        let pp = pre.as_ptr();
        let mut k = 0;
        while k < h4 {
            let iv = sigmoid4(vld1q_f32(pp.add(k)));
            let fv = sigmoid4(vld1q_f32(pp.add(hsz + k)));
            let gv = tanh4(vld1q_f32(pp.add(2 * hsz + k)));
            let ov = sigmoid4(vld1q_f32(pp.add(3 * hsz + k)));
            let cv = vfmaq_f32(vmulq_f32(iv, gv), fv, vld1q_f32(c_prev.as_ptr().add(k)));
            vst1q_f32(i.as_mut_ptr().add(k), iv);
            vst1q_f32(f.as_mut_ptr().add(k), fv);
            vst1q_f32(g.as_mut_ptr().add(k), gv);
            vst1q_f32(o.as_mut_ptr().add(k), ov);
            vst1q_f32(c.as_mut_ptr().add(k), cv);
            vst1q_f32(h.as_mut_ptr().add(k), vmulq_f32(ov, tanh4(cv)));
            k += 4;
        }
        for k in h4..hsz {
            let iv = sigmoid(pre[k]);
            let fv = sigmoid(pre[hsz + k]);
            let gv = pre[2 * hsz + k].tanh();
            let ov = sigmoid(pre[3 * hsz + k]);
            let cv = fv * c_prev[k] + iv * gv;
            i[k] = iv;
            f[k] = fv;
            g[k] = gv;
            o[k] = ov;
            c[k] = cv;
            h[k] = ov * cv.tanh();
        }
    }

    pub(super) unsafe fn gru_rh_step(pr: &[f32], hw: &[f32], hp: &[f32], rh: &mut [f32]) {
        let hsz = rh.len();
        let h4 = hsz - hsz % 4;
        let mut k = 0;
        while k < h4 {
            let r = sigmoid4(vaddq_f32(
                vld1q_f32(pr.as_ptr().add(k)),
                vld1q_f32(hw.as_ptr().add(k)),
            ));
            vst1q_f32(
                rh.as_mut_ptr().add(k),
                vmulq_f32(r, vld1q_f32(hp.as_ptr().add(k))),
            );
            k += 4;
        }
        for k in h4..hsz {
            rh[k] = sigmoid(pr[k] + hw[k]) * hp[k];
        }
    }

    pub(super) unsafe fn gru_combine_step(pr: &[f32], hw: &[f32], rhn: &[f32], h: &mut [f32]) {
        let hsz = h.len();
        let h4 = hsz - hsz % 4;
        let one = vdupq_n_f32(1.0);
        let mut k = 0;
        while k < h4 {
            let z = sigmoid4(vaddq_f32(
                vld1q_f32(pr.as_ptr().add(hsz + k)),
                vld1q_f32(hw.as_ptr().add(hsz + k)),
            ));
            let n = tanh4(vaddq_f32(
                vld1q_f32(pr.as_ptr().add(2 * hsz + k)),
                vld1q_f32(rhn.as_ptr().add(k)),
            ));
            let hv = vld1q_f32(h.as_ptr().add(k));
            let nv = vmulq_f32(vsubq_f32(one, z), n);
            vst1q_f32(h.as_mut_ptr().add(k), vfmaq_f32(nv, z, hv));
            k += 4;
        }
        for k in h4..hsz {
            let zv = sigmoid(pr[hsz + k] + hw[hsz + k]);
            let nv = (pr[2 * hsz + k] + rhn[k]).tanh();
            h[k] = (1.0 - zv) * nv + zv * h[k];
        }
    }

    pub(super) unsafe fn gru_gates_train_rz(
        pr: &[f32],
        hw: &[f32],
        hp: &[f32],
        r: &mut [f32],
        z: &mut [f32],
        rh: &mut [f32],
    ) {
        let hsz = rh.len();
        let h4 = hsz - hsz % 4;
        let mut k = 0;
        while k < h4 {
            let rv = sigmoid4(vaddq_f32(
                vld1q_f32(pr.as_ptr().add(k)),
                vld1q_f32(hw.as_ptr().add(k)),
            ));
            let zv = sigmoid4(vaddq_f32(
                vld1q_f32(pr.as_ptr().add(hsz + k)),
                vld1q_f32(hw.as_ptr().add(hsz + k)),
            ));
            vst1q_f32(r.as_mut_ptr().add(k), rv);
            vst1q_f32(z.as_mut_ptr().add(k), zv);
            vst1q_f32(
                rh.as_mut_ptr().add(k),
                vmulq_f32(rv, vld1q_f32(hp.as_ptr().add(k))),
            );
            k += 4;
        }
        for k in h4..hsz {
            let rv = sigmoid(pr[k] + hw[k]);
            r[k] = rv;
            z[k] = sigmoid(pr[hsz + k] + hw[hsz + k]);
            rh[k] = rv * hp[k];
        }
    }

    pub(super) unsafe fn gru_gates_train_nh(
        pr: &[f32],
        rhn: &[f32],
        hp: &[f32],
        z: &[f32],
        n: &mut [f32],
        h: &mut [f32],
    ) {
        let hsz = h.len();
        let h4 = hsz - hsz % 4;
        let one = vdupq_n_f32(1.0);
        let mut k = 0;
        while k < h4 {
            let nv = tanh4(vaddq_f32(
                vld1q_f32(pr.as_ptr().add(2 * hsz + k)),
                vld1q_f32(rhn.as_ptr().add(k)),
            ));
            let zv = vld1q_f32(z.as_ptr().add(k));
            vst1q_f32(n.as_mut_ptr().add(k), nv);
            let mixed = vfmaq_f32(
                vmulq_f32(vsubq_f32(one, zv), nv),
                zv,
                vld1q_f32(hp.as_ptr().add(k)),
            );
            vst1q_f32(h.as_mut_ptr().add(k), mixed);
            k += 4;
        }
        for k in h4..hsz {
            let nv = (pr[2 * hsz + k] + rhn[k]).tanh();
            n[k] = nv;
            let zv = z[k];
            h[k] = (1.0 - zv) * nv + zv * hp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desh_util::Xoshiro256pp;

    fn randv(rng: &mut Xoshiro256pp, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| lo + (hi - lo) * rng.f32()).collect()
    }

    #[test]
    fn backend_resolves_and_names() {
        let b = backend();
        assert!(!b.name().is_empty());
        assert!(supported(b));
    }

    #[test]
    fn set_backend_clamps_unsupported() {
        let prev = backend();
        #[cfg(not(target_arch = "aarch64"))]
        assert_eq!(set_backend(Backend::Neon), Backend::Scalar);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(set_backend(Backend::Avx2Fma), Backend::Scalar);
        set_backend(prev);
    }

    /// Every dispatched kernel agrees with its scalar variant to SIMD
    /// tolerance on shapes with ragged (non-multiple-of-lane) tails.
    #[test]
    fn simd_kernels_match_scalar() {
        let native = backend();
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        for &(k, n) in &[
            (1usize, 1usize),
            (3, 7),
            (8, 8),
            (13, 29),
            (64, 96),
            (57, 130),
        ] {
            let a = randv(&mut rng, k, -1.0, 1.0);
            let b = randv(&mut rng, k * n, -1.0, 1.0);
            let mut out_s = vec![0.25f32; n];
            let mut out_v = out_s.clone();
            scalar::gemv_dense_acc(&a, &b, n, 0, n, &mut out_s);
            set_backend(native);
            gemv_dense_acc(&a, &b, n, 0, n, &mut out_v);
            for (s, v) in out_s.iter().zip(&out_v) {
                assert!((s - v).abs() <= 1e-4, "gemv {k}x{n}: {s} vs {v}");
            }

            let d_s = scalar::dot(&a, &b[..k]);
            let d_v = dot(&a, &b[..k]);
            assert!((d_s - d_v).abs() <= 1e-4 * (k as f32).sqrt() + 1e-6);
        }
        set_backend(native);
    }

    /// The fused multi-row GEMVs must be BIT-identical per row to the
    /// single-row kernel on the active backend — the fleet wave path
    /// relies on this to keep batched streams byte-equal to their
    /// sequential batch=1 histories. Covers both the fused shape
    /// (n % 64 == 0) and the per-row fallback shapes.
    #[test]
    fn fused_multirow_gemv_bit_identical_to_single_row() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for &(k, n) in &[(64usize, 256usize), (64, 128), (64, 96), (17, 40), (64, 5)] {
            let rows: Vec<Vec<f32>> = (0..4).map(|_| randv(&mut rng, k, -1.0, 1.0)).collect();
            let b = randv(&mut rng, k * n, -1.0, 1.0);
            let init = randv(&mut rng, n, -0.5, 0.5);
            let single: Vec<Vec<f32>> = rows
                .iter()
                .map(|a| {
                    let mut out = init.clone();
                    gemv_dense_acc(a, &b, n, 0, n, &mut out);
                    out
                })
                .collect();
            let mut o2: Vec<Vec<f32>> = vec![init.clone(); 2];
            {
                let (lo, hi) = o2.split_at_mut(1);
                gemv_dense_acc2(
                    [rows[0].as_slice(), rows[1].as_slice()],
                    &b,
                    n,
                    0,
                    n,
                    [lo[0].as_mut_slice(), hi[0].as_mut_slice()],
                );
            }
            let mut o4: Vec<Vec<f32>> = vec![init.clone(); 4];
            {
                let (ab, cd) = o4.split_at_mut(2);
                let (oa, ob) = ab.split_at_mut(1);
                let (oc, od) = cd.split_at_mut(1);
                gemv_dense_acc4(
                    [
                        rows[0].as_slice(),
                        rows[1].as_slice(),
                        rows[2].as_slice(),
                        rows[3].as_slice(),
                    ],
                    &b,
                    n,
                    0,
                    n,
                    [
                        oa[0].as_mut_slice(),
                        ob[0].as_mut_slice(),
                        oc[0].as_mut_slice(),
                        od[0].as_mut_slice(),
                    ],
                );
            }
            for r in 0..2 {
                assert_eq!(
                    single[r].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    o2[r].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "acc2 row {r} diverged at {k}x{n}"
                );
            }
            for r in 0..4 {
                assert_eq!(
                    single[r].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    o4[r].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "acc4 row {r} diverged at {k}x{n}"
                );
            }
        }
    }

    #[test]
    fn fused_lstm_gates_match_scalar_reference() {
        let native = backend();
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for &hsz in &[1usize, 4, 9, 32, 61] {
            let pre = randv(&mut rng, 4 * hsz, -4.0, 4.0);
            let c0 = randv(&mut rng, hsz, -1.0, 1.0);
            let mut c_s = c0.clone();
            let mut h_s = vec![0.0f32; hsz];
            scalar::lstm_gates_step(&pre, &mut c_s, &mut h_s);
            let mut c_v = c0.clone();
            let mut h_v = vec![0.0f32; hsz];
            set_backend(native);
            lstm_gates_step(&pre, &mut c_v, &mut h_v);
            for k in 0..hsz {
                assert!(
                    (c_s[k] - c_v[k]).abs() <= 2e-6,
                    "c[{k}] {} vs {}",
                    c_s[k],
                    c_v[k]
                );
                assert!(
                    (h_s[k] - h_v[k]).abs() <= 2e-6,
                    "h[{k}] {} vs {}",
                    h_s[k],
                    h_v[k]
                );
            }
            // Step and train variants agree bitwise within the active
            // backend (the cross-path invariant the model tests rely on).
            let (mut i, mut f, mut g, mut o) = (
                vec![0.0f32; hsz],
                vec![0.0f32; hsz],
                vec![0.0f32; hsz],
                vec![0.0f32; hsz],
            );
            let mut c_t = vec![0.0f32; hsz];
            let mut h_t = vec![0.0f32; hsz];
            lstm_gates_train(
                &pre, &c0, &mut i, &mut f, &mut g, &mut o, &mut c_t, &mut h_t,
            );
            assert_eq!(c_v, c_t);
            assert_eq!(h_v, h_t);
        }
        set_backend(native);
    }

    #[test]
    fn fused_gru_gates_match_scalar_reference() {
        let native = backend();
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        for &hsz in &[1usize, 5, 16, 37] {
            let pr = randv(&mut rng, 3 * hsz, -3.0, 3.0);
            let hw = randv(&mut rng, 3 * hsz, -3.0, 3.0);
            let rhn = randv(&mut rng, hsz, -3.0, 3.0);
            let hp = randv(&mut rng, hsz, -1.0, 1.0);
            let mut rh_s = vec![0.0f32; hsz];
            let mut h_s = hp.clone();
            scalar::gru_rh_step(&pr, &hw, &hp, &mut rh_s);
            scalar::gru_combine_step(&pr, &hw, &rhn, &mut h_s);
            set_backend(native);
            let mut rh_v = vec![0.0f32; hsz];
            let mut h_v = hp.clone();
            gru_rh_step(&pr, &hw, &hp, &mut rh_v);
            gru_combine_step(&pr, &hw, &rhn, &mut h_v);
            for k in 0..hsz {
                assert!((rh_s[k] - rh_v[k]).abs() <= 2e-6);
                assert!((h_s[k] - h_v[k]).abs() <= 2e-6);
            }
        }
        set_backend(native);
    }

    #[test]
    fn int8_gemv_matches_dequantized_f32() {
        let native = backend();
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for &(k, n) in &[(5usize, 9usize), (16, 24), (33, 70)] {
            let a = randv(&mut rng, k, -1.0, 1.0);
            let w = randv(&mut rng, k * n, -0.5, 0.5);
            let maxabs = w.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let scale = if maxabs == 0.0 { 1.0 } else { maxabs / 127.0 };
            let q: Vec<i8> = w
                .iter()
                .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8)
                .collect();
            let deq: Vec<f32> = q.iter().map(|&v| v as f32 * scale).collect();
            let mut want = vec![0.0f32; n];
            scalar::gemv_dense_acc(&a, &deq, n, 0, n, &mut want);
            set_backend(native);
            let mut got = vec![0.0f32; n];
            gemv_i8_acc(&a, &q, n, 0, n, scale, &mut got);
            for (wv, gv) in want.iter().zip(&got) {
                assert!((wv - gv).abs() <= 1e-3, "{wv} vs {gv}");
            }
        }
        set_backend(native);
    }
}
