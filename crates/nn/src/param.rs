//! Trainable parameters and weight initialisation.

use crate::mat::Mat;
use desh_util::Xoshiro256pp;

/// A trainable tensor: the weight matrix plus its accumulated gradient.
/// Optimizers own any additional per-parameter state (momentum, RMS cache)
/// keyed by the order in which a model yields its parameters.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current weights.
    pub w: Mat,
    /// Accumulated gradient for the current step.
    pub g: Mat,
    /// Diagnostic name (e.g. `lstm0.wx`).
    pub name: String,
}

impl Param {
    /// Zero-initialised parameter (used for biases).
    pub fn zeros(name: &str, rows: usize, cols: usize) -> Self {
        Self {
            w: Mat::zeros(rows, cols),
            g: Mat::zeros(rows, cols),
            name: name.to_string(),
        }
    }

    /// Xavier/Glorot uniform initialisation: U(-a, a) with
    /// a = sqrt(6 / (fan_in + fan_out)). The standard choice for tanh/sigmoid
    /// recurrent nets, which is what the paper's stacked LSTM is.
    pub fn xavier(name: &str, rows: usize, cols: usize, rng: &mut Xoshiro256pp) -> Self {
        let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let w = Mat::from_fn(rows, cols, |_, _| (rng.f32() * 2.0 - 1.0) * a);
        Self {
            g: Mat::zeros(rows, cols),
            w,
            name: name.to_string(),
        }
    }

    /// Uniform initialisation in [-a, a] (used for embedding tables).
    pub fn uniform(name: &str, rows: usize, cols: usize, a: f32, rng: &mut Xoshiro256pp) -> Self {
        let w = Mat::from_fn(rows, cols, |_, _| (rng.f32() * 2.0 - 1.0) * a);
        Self {
            g: Mat::zeros(rows, cols),
            w,
            name: name.to_string(),
        }
    }

    /// Zero the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.g.clear();
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.w.rows() * self.w.cols()
    }

    /// True if the parameter holds no weights.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Clip the global gradient norm of a parameter set to `max_norm`.
/// Returns the pre-clip norm. Standard recipe against exploding gradients
/// in BPTT.
pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f64) -> f64 {
    let total: f64 = params.iter().map(|p| p.g.sq_norm()).sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = (max_norm / norm) as f32;
        for p in params.iter_mut() {
            p.g.scale(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let p = Param::xavier("w", 10, 14, &mut rng);
        let a = (6.0f64 / 24.0).sqrt() as f32;
        assert!(p.w.data().iter().all(|x| x.abs() <= a));
        // Not all identical (i.e. actually random).
        assert!(p.w.data().iter().any(|&x| x != p.w.data()[0]));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros("b", 2, 2);
        p.g.data_mut()[0] = 3.0;
        p.zero_grad();
        assert!(p.g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut p = Param::zeros("w", 1, 4);
        p.g.data_mut().copy_from_slice(&[3.0, 4.0, 0.0, 0.0]); // norm 5
        let norm = clip_global_norm(&mut [&mut p], 1.0);
        assert!((norm - 5.0).abs() < 1e-9);
        let new_norm = p.g.sq_norm().sqrt();
        assert!((new_norm - 1.0).abs() < 1e-6);

        let mut q = Param::zeros("w", 1, 2);
        q.g.data_mut().copy_from_slice(&[0.1, 0.1]);
        let before = q.g.clone();
        clip_global_norm(&mut [&mut q], 1.0);
        assert_eq!(q.g, before, "small gradients must pass through unchanged");
    }
}
