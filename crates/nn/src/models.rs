//! The two model shapes Desh trains.
//!
//! * [`TokenLstm`] — phrase-id sequences → next-phrase distribution
//!   (phase 1; also reused by the DeepLog-style baseline). Embedding →
//!   stacked LSTM → softmax head, trained with SGD + categorical
//!   cross-entropy per Table 5.
//! * [`VectorLstm`] — (ΔT, phrase-id) 2-state vectors → next vector
//!   (phases 2 and 3), trained with RMSprop + MSE per Table 5.
//!
//! Both train on fixed-length history windows (the paper's "history size"),
//! resetting recurrent state per window — i.e. truncated BPTT over the
//! window, which is exactly what a Keras stateless LSTM with a fixed
//! `timesteps` dimension does.

use crate::embedding::Embedding;
use crate::loss::{mse, mse_denom, mse_vec, softmax, softmax_xent, softmax_xent_denom};
use crate::lstm::LstmState;
use crate::mat::Mat;
use crate::observe::{NoopObserver, ParamStatsAcc, ShardStats, TrainObserver};
use crate::optim::Optimizer;
use crate::parallel::{shard_count, shard_ranges, tree_reduce_indices, GradSet};
use crate::param::{clip_global_norm, Param};
use crate::stacked::{StackedLstm, StackedScratch};
use desh_util::Xoshiro256pp;
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Hyper-parameters for a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// History window size (paper: 8 in phase 1, 5 in phases 2/3).
    pub history: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Number of passes over the window set.
    pub epochs: usize,
    /// Global gradient-norm clip.
    pub clip: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            history: 8,
            batch: 32,
            epochs: 4,
            clip: 5.0,
        }
    }
}

/// Per-epoch mean losses returned by a training run.
pub type EpochLosses = Vec<f64>;

/// One shard's private state for the data-parallel trainer: gradient
/// accumulators, forward/backward scratch, the current batch's loss
/// contribution, and per-epoch work accounting.
struct TrainShard {
    grads: GradSet,
    ws: StackedScratch,
    loss: f64,
    windows: usize,
    busy: Duration,
}

impl TrainShard {
    fn fresh(params: &[&Param], n: usize) -> Vec<TrainShard> {
        (0..n)
            .map(|_| TrainShard {
                grads: GradSet::zeros_like(params),
                ws: StackedScratch::new(),
                loss: 0.0,
                windows: 0,
                busy: Duration::ZERO,
            })
            .collect()
    }

    fn reset_epoch(states: &mut [TrainShard]) {
        for st in states {
            st.windows = 0;
            st.busy = Duration::ZERO;
        }
    }

    fn epoch_stats(states: &[TrainShard]) -> Vec<ShardStats> {
        states
            .iter()
            .enumerate()
            .map(|(i, st)| ShardStats {
                shard: i,
                windows: st.windows,
                busy: st.busy,
            })
            .collect()
    }
}

/// Merge shard gradients in the fixed tree order, add the total into the
/// parameters, clip, and step the optimizer. Returns the batch's summed
/// loss and the wall time of the tree reduction (including the final add
/// into the parameter gradients). Shard gradient buffers are left zeroed
/// for the next batch. When `stats` is set (an observer opted into
/// per-layer stats) the merged buffers get one extra read pass before
/// they are cleared; the stats never feed back into the update, so the
/// numerics are identical with or without an accumulator.
fn reduce_apply_step(
    states: &mut [TrainShard],
    params: &mut [&mut Param],
    clip: f64,
    opt: &mut dyn Optimizer,
    stats: Option<&mut ParamStatsAcc>,
) -> (f64, Duration) {
    let t0 = Instant::now();
    tree_reduce_indices(states.len(), |d, s| {
        let (a, b) = states.split_at_mut(s);
        a[d].grads.add_assign(&b[0].grads);
        a[d].loss += b[0].loss;
    });
    states[0].grads.apply_to(params);
    let reduce_elapsed = t0.elapsed();
    if let Some(acc) = stats {
        acc.accumulate(states[0].grads.mats());
    }
    clip_global_norm(params, clip);
    opt.step(params);
    let loss = states[0].loss;
    for st in states {
        st.grads.clear();
    }
    (loss, reduce_elapsed)
}

// ---------------------------------------------------------------------------
// TokenLstm
// ---------------------------------------------------------------------------

/// Next-phrase language model over encoded phrase ids.
#[derive(Debug, Clone)]
pub struct TokenLstm {
    /// Input embedding table.
    pub embed: Embedding,
    /// Stacked LSTM + softmax head (logits over the vocabulary).
    pub net: StackedLstm,
}

impl TokenLstm {
    /// Fresh model with a jointly trained embedding.
    pub fn new(
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
        layers: usize,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        Self {
            embed: Embedding::new(vocab, embed_dim, rng),
            net: StackedLstm::new(embed_dim, hidden, layers, vocab, rng),
        }
    }

    /// Model seeded with pre-trained embeddings (e.g. skip-gram, §3.1 of the
    /// paper). The table is still fine-tuned during training.
    pub fn with_embeddings(
        table: Mat,
        hidden: usize,
        layers: usize,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        let vocab = table.rows();
        let dim = table.cols();
        Self {
            embed: Embedding::from_table(table),
            net: StackedLstm::new(dim, hidden, layers, vocab, rng),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.embed.vocab()
    }

    /// All parameters in deterministic order (embedding first).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = vec![&mut self.embed.table];
        ps.extend(self.net.params_mut());
        ps
    }

    /// Immutable parameter view (same order as [`Self::params_mut`]).
    pub fn params(&self) -> Vec<&Param> {
        let mut ps = vec![&self.embed.table];
        ps.extend(self.net.params());
        ps
    }

    /// Enumerate (sequence index, end position) of every full history
    /// window with a target token after it.
    fn window_index(seqs: &[Vec<u32>], history: usize) -> Vec<(u32, u32)> {
        let mut idx = Vec::new();
        for (si, s) in seqs.iter().enumerate() {
            if s.len() > history {
                for t in history..s.len() {
                    idx.push((si as u32, t as u32));
                }
            }
        }
        idx
    }

    /// Train with the given optimizer; returns the mean loss per epoch.
    pub fn train(
        &mut self,
        seqs: &[Vec<u32>],
        cfg: &TrainConfig,
        opt: &mut dyn Optimizer,
        rng: &mut Xoshiro256pp,
    ) -> EpochLosses {
        self.train_observed(seqs, cfg, opt, rng, &mut NoopObserver)
    }

    /// [`TokenLstm::train`] with a per-epoch [`TrainObserver`] callback.
    ///
    /// Data-parallel: each minibatch is split across a fixed number of
    /// gradient shards (`parallel::shard_count`, default 8) executed by
    /// however many threads the rayon shim is configured for, then merged
    /// with a deterministic tree reduction. Numerics depend only on the
    /// shard count: any thread count yields bit-identical weights.
    pub fn train_observed(
        &mut self,
        seqs: &[Vec<u32>],
        cfg: &TrainConfig,
        opt: &mut dyn Optimizer,
        rng: &mut Xoshiro256pp,
        observer: &mut dyn TrainObserver,
    ) -> EpochLosses {
        let mut index = Self::window_index(seqs, cfg.history);
        assert!(
            !index.is_empty(),
            "no training windows: all sequences shorter than history+1"
        );
        let shards = shard_count();
        let mut states = TrainShard::fresh(&self.params(), shards);
        let mut stats_acc = observer
            .wants_param_stats()
            .then(|| ParamStatsAcc::new(&self.params()));
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let epoch_start = Instant::now();
            rng.shuffle(&mut index);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            TrainShard::reset_epoch(&mut states);
            for chunk in index.chunks(cfg.batch) {
                let ranges = shard_ranges(chunk.len(), shards);
                {
                    let model = &*self;
                    states.par_chunks_mut(1).enumerate().for_each(|(si, st)| {
                        let st = &mut st[0];
                        st.loss = 0.0;
                        let r = ranges[si].clone();
                        if r.is_empty() {
                            return;
                        }
                        let t0 = Instant::now();
                        st.loss = model.shard_pass(
                            seqs,
                            &chunk[r.clone()],
                            cfg.history,
                            chunk.len(),
                            &mut st.ws,
                            &mut st.grads,
                        );
                        st.windows += r.len();
                        st.busy += t0.elapsed();
                    });
                }
                let (loss, reduce_elapsed) = reduce_apply_step(
                    &mut states,
                    &mut self.params_mut(),
                    cfg.clip,
                    opt,
                    stats_acc.as_mut(),
                );
                epoch_loss += loss;
                batches += 1;
                observer.on_grad_reduce(reduce_elapsed);
            }
            let mean = epoch_loss / batches.max(1) as f64;
            observer.on_epoch(epoch, mean, epoch_start.elapsed());
            observer.on_shards(epoch, &TrainShard::epoch_stats(&states));
            if let Some(acc) = stats_acc.as_mut() {
                let stats = acc.finish_epoch(&self.params(), f64::from(opt.learning_rate()));
                observer.on_param_stats(epoch, &stats);
            }
            if observer.wants_checkpoints() {
                let model = &*self;
                observer.on_checkpoint(epoch, &mut || model.to_bytes());
            }
            losses.push(mean);
            if observer.should_stop() {
                break;
            }
        }
        losses
    }

    /// Forward + backward for one shard's slice of a minibatch: gradients
    /// go into the shard's own buffers, losses use the full-batch
    /// denominator so the tree-reduced sum equals the one-shot batch
    /// gradient.
    fn shard_pass(
        &self,
        seqs: &[Vec<u32>],
        rows: &[(u32, u32)],
        history: usize,
        batch_rows: usize,
        ws: &mut StackedScratch,
        grads: &mut GradSet,
    ) -> f64 {
        // Build per-timestep id columns for this shard's rows.
        let mut step_ids: Vec<Vec<u32>> = vec![Vec::with_capacity(rows.len()); history];
        let mut targets = Vec::with_capacity(rows.len());
        for &(si, t) in rows {
            let s = &seqs[si as usize];
            let t = t as usize;
            for (k, ids) in step_ids.iter_mut().enumerate() {
                ids.push(s[t - history + k]);
            }
            targets.push(s[t]);
        }
        // Forward: embed each timestep, run the stack.
        let mut xs = Vec::with_capacity(history);
        let mut ecaches = Vec::with_capacity(history);
        for ids in &step_ids {
            let (x, c) = self.embed.forward(ids);
            xs.push(x);
            ecaches.push(c);
        }
        let (logits, tape) = self.net.forward_ws(&xs, ws);
        let (loss, dlogits) = softmax_xent_denom(&logits, &targets, batch_rows);
        // Backward into the shard's buffers: [embed table | net params].
        let (etab, net_grads) = grads.mats_mut().split_first_mut().expect("grad layout");
        let dxs = self.net.backward_into(&tape, &dlogits, net_grads);
        for (c, dx) in ecaches.iter().zip(&dxs) {
            self.embed.backward_into(c, dx, etab);
        }
        loss
    }

    /// Single-threaded reference trainer: the exact pre-sharding loop,
    /// kept so benches can measure the parallel path against it and tests
    /// can bound the 1-worker-vs-sequential FP drift (summation order is
    /// the only difference).
    pub fn train_sequential(
        &mut self,
        seqs: &[Vec<u32>],
        cfg: &TrainConfig,
        opt: &mut dyn Optimizer,
        rng: &mut Xoshiro256pp,
        observer: &mut dyn TrainObserver,
    ) -> EpochLosses {
        let mut index = Self::window_index(seqs, cfg.history);
        assert!(
            !index.is_empty(),
            "no training windows: all sequences shorter than history+1"
        );
        let mut losses = Vec::with_capacity(cfg.epochs);
        let mut ws = StackedScratch::new();
        for epoch in 0..cfg.epochs {
            let epoch_start = Instant::now();
            rng.shuffle(&mut index);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in index.chunks(cfg.batch) {
                // Build per-timestep id columns.
                let mut step_ids: Vec<Vec<u32>> =
                    vec![Vec::with_capacity(chunk.len()); cfg.history];
                let mut targets = Vec::with_capacity(chunk.len());
                for &(si, t) in chunk {
                    let s = &seqs[si as usize];
                    let t = t as usize;
                    for (k, ids) in step_ids.iter_mut().enumerate() {
                        ids.push(s[t - cfg.history + k]);
                    }
                    targets.push(s[t]);
                }
                // Forward: embed each timestep, run the stack.
                let mut xs = Vec::with_capacity(cfg.history);
                let mut ecaches = Vec::with_capacity(cfg.history);
                for ids in &step_ids {
                    let (x, c) = self.embed.forward(ids);
                    xs.push(x);
                    ecaches.push(c);
                }
                let (logits, tape) = self.net.forward_ws(&xs, &mut ws);
                let (loss, dlogits) = softmax_xent(&logits, &targets);
                epoch_loss += loss;
                batches += 1;
                // Backward.
                let dxs = self.net.backward(&tape, &dlogits);
                for (c, dx) in ecaches.iter().zip(&dxs) {
                    self.embed.backward(c, dx);
                }
                clip_global_norm(&mut self.params_mut(), cfg.clip);
                opt.step(&mut self.params_mut());
            }
            let mean = epoch_loss / batches.max(1) as f64;
            observer.on_epoch(epoch, mean, epoch_start.elapsed());
            losses.push(mean);
        }
        losses
    }

    /// Probability distribution over the next phrase given a context window
    /// (uses up to the last `history` tokens; shorter contexts work too).
    pub fn predict_probs(&self, context: &[u32]) -> Vec<f32> {
        assert!(!context.is_empty());
        let xs: Vec<Mat> = context.iter().map(|&id| self.embed.infer(&[id])).collect();
        let logits = self.net.infer(&xs);
        softmax(&logits).row(0).to_vec()
    }

    /// Greedy k-step autoregressive prediction ("3-step prediction" in the
    /// paper): repeatedly predict the next phrase and feed it back, always
    /// conditioning on the most recent `history`-sized window so inference
    /// matches the fixed-window regime the model was trained in.
    pub fn predict_kstep(&self, context: &[u32], k: usize) -> Vec<u32> {
        let history = context.len();
        let mut ctx = context.to_vec();
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let window = &ctx[ctx.len() - history..];
            let probs = self.predict_probs(window);
            let best = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap();
            out.push(best);
            ctx.push(best);
        }
        out
    }

    /// Fraction of evaluation windows whose full k-step greedy prediction
    /// matches the actual continuation. This is the paper's phase-1
    /// "accuracy" knob for the history-size / step-count trade-off.
    pub fn accuracy_kstep(&self, seqs: &[Vec<u32>], history: usize, k: usize) -> f64 {
        let mut total = 0usize;
        let mut hit = 0usize;
        for s in seqs {
            if s.len() < history + k {
                continue;
            }
            for t in history..=(s.len() - k) {
                let pred = self.predict_kstep(&s[t - history..t], k);
                if pred[..] == s[t..t + k] {
                    hit += 1;
                }
                total += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hit as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------------
// VectorLstm
// ---------------------------------------------------------------------------

/// Next-sample regressor over small dense vectors, e.g. (ΔT, phrase-id).
#[derive(Debug, Clone)]
pub struct VectorLstm {
    /// Stacked LSTM with a linear head of the same width as the input.
    pub net: StackedLstm,
    dim: usize,
}

impl VectorLstm {
    /// Fresh model for `dim`-wide samples.
    pub fn new(dim: usize, hidden: usize, layers: usize, rng: &mut Xoshiro256pp) -> Self {
        Self {
            net: StackedLstm::new(dim, hidden, layers, dim, rng),
            dim,
        }
    }

    /// Sample width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Left-pad a window to `history` samples with zero vectors; failure
    /// chains can be shorter than the history size.
    fn window_mats(&self, window: &[&[f32]], history: usize) -> Vec<Mat> {
        let pad = history.saturating_sub(window.len());
        let mut xs = Vec::with_capacity(history);
        for _ in 0..pad {
            xs.push(Mat::zeros(1, self.dim));
        }
        for w in window.iter().skip(window.len().saturating_sub(history)) {
            xs.push(Mat::from_vec(1, self.dim, w.to_vec()));
        }
        xs
    }

    /// Enumerate (sequence, target position) training windows. Unlike the
    /// token model we allow short prefixes (zero-padded) because failure
    /// chains are often shorter than history+1.
    fn window_index(seqs: &[Vec<Vec<f32>>]) -> Vec<(u32, u32)> {
        let mut idx = Vec::new();
        for (si, s) in seqs.iter().enumerate() {
            for t in 1..s.len() {
                idx.push((si as u32, t as u32));
            }
        }
        idx
    }

    /// Train on sequences of samples; returns mean loss per epoch.
    pub fn train(
        &mut self,
        seqs: &[Vec<Vec<f32>>],
        cfg: &TrainConfig,
        opt: &mut dyn Optimizer,
        rng: &mut Xoshiro256pp,
    ) -> EpochLosses {
        self.train_observed(seqs, cfg, opt, rng, &mut NoopObserver)
    }

    /// [`VectorLstm::train`] with a per-epoch [`TrainObserver`] callback.
    ///
    /// Data-parallel exactly like [`TokenLstm::train_observed`]: a fixed
    /// shard count and a deterministic gradient tree-reduction keep the
    /// weights bit-identical at any thread count.
    pub fn train_observed(
        &mut self,
        seqs: &[Vec<Vec<f32>>],
        cfg: &TrainConfig,
        opt: &mut dyn Optimizer,
        rng: &mut Xoshiro256pp,
        observer: &mut dyn TrainObserver,
    ) -> EpochLosses {
        for s in seqs {
            for v in s {
                assert_eq!(v.len(), self.dim, "sample width mismatch");
            }
        }
        let mut index = Self::window_index(seqs);
        assert!(
            !index.is_empty(),
            "no training windows: sequences too short"
        );
        let shards = shard_count();
        let mut states = TrainShard::fresh(&self.net.params(), shards);
        let mut stats_acc = observer
            .wants_param_stats()
            .then(|| ParamStatsAcc::new(&self.net.params()));
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let epoch_start = Instant::now();
            rng.shuffle(&mut index);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            TrainShard::reset_epoch(&mut states);
            for chunk in index.chunks(cfg.batch) {
                let ranges = shard_ranges(chunk.len(), shards);
                let denom_elems = chunk.len() * self.dim;
                {
                    let model = &*self;
                    states.par_chunks_mut(1).enumerate().for_each(|(si, st)| {
                        let st = &mut st[0];
                        st.loss = 0.0;
                        let r = ranges[si].clone();
                        if r.is_empty() {
                            return;
                        }
                        let t0 = Instant::now();
                        st.loss = model.shard_pass(
                            seqs,
                            &chunk[r.clone()],
                            cfg.history,
                            denom_elems,
                            &mut st.ws,
                            &mut st.grads,
                        );
                        st.windows += r.len();
                        st.busy += t0.elapsed();
                    });
                }
                let (loss, reduce_elapsed) = reduce_apply_step(
                    &mut states,
                    &mut self.net.params_mut(),
                    cfg.clip,
                    opt,
                    stats_acc.as_mut(),
                );
                epoch_loss += loss;
                batches += 1;
                observer.on_grad_reduce(reduce_elapsed);
            }
            let mean = epoch_loss / batches.max(1) as f64;
            observer.on_epoch(epoch, mean, epoch_start.elapsed());
            observer.on_shards(epoch, &TrainShard::epoch_stats(&states));
            if let Some(acc) = stats_acc.as_mut() {
                let stats = acc.finish_epoch(&self.net.params(), f64::from(opt.learning_rate()));
                observer.on_param_stats(epoch, &stats);
            }
            if observer.wants_checkpoints() {
                let model = &*self;
                observer.on_checkpoint(epoch, &mut || model.to_bytes());
            }
            losses.push(mean);
            if observer.should_stop() {
                break;
            }
        }
        losses
    }

    /// Forward + backward for one shard's slice of a minibatch (see
    /// [`TokenLstm::shard_pass`]); `denom_elems` is the full batch's
    /// rows × dim so shard losses sum to the batch MSE.
    fn shard_pass(
        &self,
        seqs: &[Vec<Vec<f32>>],
        rows: &[(u32, u32)],
        history: usize,
        denom_elems: usize,
        ws: &mut StackedScratch,
        grads: &mut GradSet,
    ) -> f64 {
        // Assemble this shard's timesteps with left zero-padding.
        let b = rows.len();
        let mut xs: Vec<Mat> = (0..history).map(|_| Mat::zeros(b, self.dim)).collect();
        let mut target = Mat::zeros(b, self.dim);
        for (r, &(si, t)) in rows.iter().enumerate() {
            let s = &seqs[si as usize];
            let t = t as usize;
            let lo = t.saturating_sub(history);
            let pad = history - (t - lo);
            for (k, sample) in s[lo..t].iter().enumerate() {
                xs[pad + k].row_mut(r).copy_from_slice(sample);
            }
            target.row_mut(r).copy_from_slice(&s[t]);
        }
        let (pred, tape) = self.net.forward_ws(&xs, ws);
        let (loss, dpred) = mse_denom(&pred, &target, denom_elems);
        self.net.backward_into(&tape, &dpred, grads.mats_mut());
        loss
    }

    /// Single-threaded reference trainer (see
    /// [`TokenLstm::train_sequential`]).
    pub fn train_sequential(
        &mut self,
        seqs: &[Vec<Vec<f32>>],
        cfg: &TrainConfig,
        opt: &mut dyn Optimizer,
        rng: &mut Xoshiro256pp,
        observer: &mut dyn TrainObserver,
    ) -> EpochLosses {
        for s in seqs {
            for v in s {
                assert_eq!(v.len(), self.dim, "sample width mismatch");
            }
        }
        let mut index = Self::window_index(seqs);
        assert!(
            !index.is_empty(),
            "no training windows: sequences too short"
        );
        let mut losses = Vec::with_capacity(cfg.epochs);
        let mut ws = StackedScratch::new();
        for epoch in 0..cfg.epochs {
            let epoch_start = Instant::now();
            rng.shuffle(&mut index);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in index.chunks(cfg.batch) {
                // Assemble batched timesteps with left zero-padding.
                let b = chunk.len();
                let mut xs: Vec<Mat> = (0..cfg.history).map(|_| Mat::zeros(b, self.dim)).collect();
                let mut target = Mat::zeros(b, self.dim);
                for (r, &(si, t)) in chunk.iter().enumerate() {
                    let s = &seqs[si as usize];
                    let t = t as usize;
                    let lo = t.saturating_sub(cfg.history);
                    let pad = cfg.history - (t - lo);
                    for (k, sample) in s[lo..t].iter().enumerate() {
                        xs[pad + k].row_mut(r).copy_from_slice(sample);
                    }
                    target.row_mut(r).copy_from_slice(&s[t]);
                }
                let (pred, tape) = self.net.forward_ws(&xs, &mut ws);
                let (loss, dpred) = mse(&pred, &target);
                epoch_loss += loss;
                batches += 1;
                self.net.backward(&tape, &dpred);
                clip_global_norm(&mut self.net.params_mut(), cfg.clip);
                opt.step(&mut self.net.params_mut());
            }
            let mean = epoch_loss / batches.max(1) as f64;
            observer.on_epoch(epoch, mean, epoch_start.elapsed());
            losses.push(mean);
        }
        losses
    }

    /// Predict the next sample from a context window.
    pub fn predict_next(&self, window: &[&[f32]], history: usize) -> Vec<f32> {
        assert!(!window.is_empty());
        let xs = self.window_mats(window, history);
        self.net.infer(&xs).row(0).to_vec()
    }

    /// Fresh reusable workspace for the windowed scoring path.
    pub fn workspace(&self) -> ScoreWorkspace {
        ScoreWorkspace {
            states: self.net.zero_states(1),
            ws: StackedScratch::new(),
            x: Mat::zeros(1, self.dim),
            y: Mat::zeros(1, self.dim),
        }
    }

    /// Per-position one-step-ahead MSE along a sequence: element `t` scores
    /// how well positions `..=t` predicted sample `t+1`. This is the
    /// quantity the paper thresholds at 0.5 in phase 3. All transients
    /// live in the caller-held workspace; the only per-call allocation is
    /// the returned score vector.
    pub fn score_sequence_ws(
        &self,
        seq: &[Vec<f32>],
        history: usize,
        sw: &mut ScoreWorkspace,
    ) -> Vec<f64> {
        let mut scores = Vec::with_capacity(seq.len().saturating_sub(1));
        for t in 1..seq.len() {
            let lo = t.saturating_sub(history);
            let window = &seq[lo..t];
            // Re-run the window from zero state, left zero-padded to
            // `history` steps exactly like the batched training windows.
            for st in &mut sw.states {
                st.clear();
            }
            sw.x.clear();
            for _ in window.len()..history {
                self.net.step_layers(&sw.x, &mut sw.states, &mut sw.ws);
            }
            for sample in window {
                sw.x.row_mut(0).copy_from_slice(sample);
                self.net.step_layers(&sw.x, &mut sw.states, &mut sw.ws);
            }
            let top = &sw.states[sw.states.len() - 1].h;
            self.net.head.infer_into(top, &mut sw.y);
            scores.push(mse_vec(sw.y.row(0), &seq[t]));
        }
        scores
    }

    /// [`VectorLstm::score_sequence_ws`] with a throwaway workspace.
    pub fn score_sequence(&self, seq: &[Vec<f32>], history: usize) -> Vec<f64> {
        let mut sw = self.workspace();
        self.score_sequence_ws(seq, history, &mut sw)
    }

    /// Begin a carried-state streaming pass (DeepLog-style): the recurrent
    /// state persists across pushes, so each new sample costs exactly one
    /// cell step per layer instead of a windowed re-run.
    pub fn begin_stream(&self) -> VectorStream {
        VectorStream {
            states: self.net.zero_states(1),
            ws: StackedScratch::new(),
            x: Mat::zeros(1, self.dim),
            pred: vec![0.0; self.dim],
            steps: 0,
        }
    }

    /// Feed the next sample of a stream. Returns the one-step-ahead MSE of
    /// the previous prediction against this sample (`None` on the first
    /// push, which has no prediction to judge). Allocation-free once the
    /// stream's buffers are warm.
    pub fn stream_push(&self, st: &mut VectorStream, sample: &[f32]) -> Option<f64> {
        assert_eq!(sample.len(), self.dim, "sample width mismatch");
        let score = (st.steps > 0).then(|| mse_vec(&st.pred, sample));
        st.x.row_mut(0).copy_from_slice(sample);
        let y = self.net.step_infer_ws(&st.x, &mut st.states, &mut st.ws);
        st.pred.copy_from_slice(y.row(0));
        st.steps += 1;
        score
    }

    /// Begin a slot-resident batched streaming pass: `slots` independent
    /// carried-state streams living as rows of shared state matrices. A
    /// fleet shard parks one node per slot and steps only the rows with a
    /// live event each wave via [`VectorLstm::stream_push_rows`] — no
    /// per-event gather/scatter of recurrent state.
    pub fn begin_stream_batch(&self, slots: usize) -> VectorStreamBatch {
        VectorStreamBatch {
            states: self.net.zero_states(slots),
            ws: StackedScratch::new(),
            x: Mat::zeros(slots, self.dim),
            preds: Mat::zeros(slots, self.dim),
            steps: vec![0; slots],
        }
    }

    /// Feed one staged sample per listed slot, batched. Callers stage each
    /// slot's sample into [`VectorStreamBatch::input_row_mut`] first;
    /// `scores` is cleared and refilled with one entry per entry of
    /// `rows`, in order — the same one-step-ahead MSE a sequential
    /// [`VectorLstm::stream_push`] of that slot's stream would return
    /// (`None` on a slot's first push). Every slot's scores, predictions,
    /// and recurrent state are bit-identical to the sequential path; see
    /// the `stream_push_rows_bit_identical_to_streams` test.
    pub fn stream_push_rows(
        &self,
        sb: &mut VectorStreamBatch,
        rows: &[usize],
        scores: &mut Vec<Option<f64>>,
    ) {
        scores.clear();
        for &r in rows {
            scores.push((sb.steps[r] > 0).then(|| mse_vec(sb.preds.row(r), sb.x.row(r))));
        }
        let y = self
            .net
            .step_infer_rows_ws(&sb.x, rows, &mut sb.states, &mut sb.ws);
        for &r in rows {
            sb.preds.row_mut(r).copy_from_slice(y.row(r));
            sb.steps[r] += 1;
        }
    }

    /// Batch reference for the streaming scorer: for every position `t`,
    /// re-run the net from zero state over the full prefix `..=t` and
    /// score its prediction of sample `t+1`. O(n²) — exists so tests can
    /// prove [`VectorLstm::stream_push`] matches a from-scratch recompute.
    pub fn score_stream_batch(&self, seq: &[Vec<f32>]) -> Vec<f64> {
        let mut scores = Vec::with_capacity(seq.len().saturating_sub(1));
        for t in 1..seq.len() {
            let xs: Vec<Mat> = seq[..t]
                .iter()
                .map(|v| Mat::from_vec(1, self.dim, v.clone()))
                .collect();
            let pred = self.net.infer(&xs);
            scores.push(mse_vec(pred.row(0), &seq[t]));
        }
        scores
    }
}

/// Reusable buffers for [`VectorLstm::score_sequence_ws`]: per-layer
/// recurrent states, the gate scratch, and staging mats for the input
/// sample and head output.
#[derive(Debug, Clone)]
pub struct ScoreWorkspace {
    states: Vec<LstmState>,
    ws: StackedScratch,
    x: Mat,
    y: Mat,
}

/// Carried state for a [`VectorLstm`] streaming pass: recurrent states,
/// gate scratch, input staging, and the pending next-sample prediction.
#[derive(Debug, Clone)]
pub struct VectorStream {
    states: Vec<LstmState>,
    ws: StackedScratch,
    x: Mat,
    pred: Vec<f32>,
    steps: usize,
}

impl VectorStream {
    /// Number of samples pushed so far.
    pub fn len(&self) -> usize {
        self.steps
    }

    /// True when no samples have been pushed.
    pub fn is_empty(&self) -> bool {
        self.steps == 0
    }

    /// The model's current prediction of the *next* sample (zeros before
    /// the first push).
    pub fn prediction(&self) -> &[f32] {
        &self.pred
    }
}

/// Slot-resident carried state for a batched [`VectorLstm`] streaming
/// pass: row `s` of every matrix belongs to stream slot `s`. Fixed
/// capacity; callers recycle slots with [`VectorStreamBatch::reset_slot`].
#[derive(Debug, Clone)]
pub struct VectorStreamBatch {
    states: Vec<LstmState>,
    ws: StackedScratch,
    x: Mat,
    preds: Mat,
    steps: Vec<usize>,
}

impl VectorStreamBatch {
    /// Slot capacity.
    pub fn slots(&self) -> usize {
        self.steps.len()
    }

    /// Stage buffer for `slot`'s next sample; overwrite the whole row
    /// before listing the slot in a [`VectorLstm::stream_push_rows`] wave.
    pub fn input_row_mut(&mut self, slot: usize) -> &mut [f32] {
        self.x.row_mut(slot)
    }

    /// Samples pushed through `slot` so far.
    pub fn len(&self, slot: usize) -> usize {
        self.steps[slot]
    }

    /// True when `slot` has seen no samples since its last reset.
    pub fn is_empty(&self, slot: usize) -> bool {
        self.steps[slot] == 0
    }

    /// The model's current prediction of `slot`'s next sample (zeros
    /// before the slot's first push).
    pub fn prediction(&self, slot: usize) -> &[f32] {
        self.preds.row(slot)
    }

    /// Return `slot` to the fresh-stream state (recurrent rows zeroed,
    /// step count cleared) so a new node can take it over. Bit-identical
    /// to handing the node a fresh [`VectorLstm::begin_stream`].
    pub fn reset_slot(&mut self, slot: usize) {
        for st in &mut self.states {
            st.h.row_mut(slot).fill(0.0);
            st.c.row_mut(slot).fill(0.0);
        }
        self.preds.row_mut(slot).fill(0.0);
        self.steps[slot] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{RmsProp, Sgd};

    /// A deterministic cyclic token dataset the model must learn quickly.
    fn cyclic_seqs(vocab: u32, len: usize, n: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|off| (0..len).map(|i| ((i + off) as u32) % vocab).collect())
            .collect()
    }

    #[test]
    fn token_lstm_learns_cyclic_sequence() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let seqs = cyclic_seqs(6, 40, 4);
        let mut m = TokenLstm::new(6, 8, 16, 2, &mut rng);
        let cfg = TrainConfig {
            history: 4,
            batch: 16,
            epochs: 30,
            clip: 5.0,
        };
        let mut opt = Sgd::with_momentum(0.3, 0.9);
        let losses = m.train(&seqs, &cfg, &mut opt, &mut rng);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss did not drop: {losses:?}"
        );
        let acc = m.accuracy_kstep(&seqs, 4, 1);
        assert!(acc > 0.9, "1-step accuracy {acc}");
    }

    #[test]
    fn token_lstm_kstep_feedback() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let seqs = cyclic_seqs(5, 50, 3);
        let mut m = TokenLstm::new(5, 8, 32, 2, &mut rng);
        let cfg = TrainConfig {
            history: 4,
            batch: 16,
            epochs: 80,
            clip: 5.0,
        };
        let mut opt = Sgd::with_momentum(0.3, 0.9);
        m.train(&seqs, &cfg, &mut opt, &mut rng);
        // After 0,1,2,3 the 3-step continuation must be 4,0,1.
        let pred = m.predict_kstep(&[0, 1, 2, 3], 3);
        assert_eq!(pred, vec![4, 0, 1]);
    }

    #[test]
    fn predict_probs_is_distribution() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let m = TokenLstm::new(7, 4, 8, 1, &mut rng);
        let p = m.predict_probs(&[1, 2, 3]);
        assert_eq!(p.len(), 7);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-5);
    }

    #[test]
    fn train_observed_reports_every_epoch() {
        use crate::observe::RecordingObserver;
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let seqs = cyclic_seqs(5, 20, 2);
        let mut m = TokenLstm::new(5, 4, 8, 1, &mut rng);
        let cfg = TrainConfig {
            history: 4,
            batch: 8,
            epochs: 3,
            clip: 5.0,
        };
        let mut opt = Sgd::new(0.1);
        let mut obs = RecordingObserver::default();
        let losses = m.train_observed(&seqs, &cfg, &mut opt, &mut rng, &mut obs);
        assert_eq!(obs.epochs.len(), 3);
        let observed: Vec<f64> = obs.epochs.iter().map(|(l, _)| *l).collect();
        assert_eq!(observed, losses);
    }

    #[test]
    fn closure_observer_sees_vector_epochs() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let seqs = countdown_seqs(2, 8);
        let mut m = VectorLstm::new(2, 4, 1, &mut rng);
        let cfg = TrainConfig {
            history: 5,
            batch: 8,
            epochs: 2,
            clip: 5.0,
        };
        let mut opt = RmsProp::new(0.01);
        let mut seen = Vec::new();
        let mut hook = |epoch: usize, loss: f64, _d: std::time::Duration| {
            seen.push((epoch, loss));
        };
        m.train_observed(&seqs, &cfg, &mut opt, &mut rng, &mut hook);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[1].0, 1);
    }

    /// Observer exercising the opt-in hooks: records per-layer stats,
    /// keeps the latest checkpoint bytes, and can stop after N epochs.
    struct StatsProbe {
        epochs: Vec<f64>,
        stats: Vec<Vec<crate::observe::ParamStats>>,
        checkpoint: Option<bytes::Bytes>,
        stop_after: Option<usize>,
    }

    impl StatsProbe {
        fn new(stop_after: Option<usize>) -> Self {
            Self {
                epochs: Vec::new(),
                stats: Vec::new(),
                checkpoint: None,
                stop_after,
            }
        }
    }

    impl TrainObserver for StatsProbe {
        fn on_epoch(&mut self, _epoch: usize, mean_loss: f64, _elapsed: Duration) {
            self.epochs.push(mean_loss);
        }
        fn wants_param_stats(&self) -> bool {
            true
        }
        fn on_param_stats(&mut self, _epoch: usize, stats: &[crate::observe::ParamStats]) {
            self.stats.push(stats.to_vec());
        }
        fn wants_checkpoints(&self) -> bool {
            true
        }
        fn on_checkpoint(&mut self, _epoch: usize, serialize: &mut dyn FnMut() -> bytes::Bytes) {
            self.checkpoint = Some(serialize());
        }
        fn should_stop(&self) -> bool {
            self.stop_after.is_some_and(|n| self.epochs.len() >= n)
        }
    }

    #[test]
    fn param_stats_cover_every_layer_and_match_training() {
        // The stats hook must fire once per epoch with one entry per
        // parameter (embedding + per-layer wx/wh/b + head w/b), all
        // finite and named, without perturbing the weights: a run with
        // stats enabled must end bit-identical to a plain run.
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let seqs = cyclic_seqs(6, 30, 3);
        let cfg = TrainConfig {
            history: 4,
            batch: 16,
            epochs: 3,
            clip: 5.0,
        };
        let mut plain = TokenLstm::new(6, 8, 12, 2, &mut rng);
        let mut observed = plain.clone();
        let mut rng_a = Xoshiro256pp::seed_from_u64(99);
        let mut rng_b = Xoshiro256pp::seed_from_u64(99);
        let mut opt_a = Sgd::with_momentum(0.2, 0.9);
        let mut opt_b = Sgd::with_momentum(0.2, 0.9);
        plain.train(&seqs, &cfg, &mut opt_a, &mut rng_a);
        let mut probe = StatsProbe::new(None);
        observed.train_observed(&seqs, &cfg, &mut opt_b, &mut rng_b, &mut probe);

        assert_eq!(probe.stats.len(), 3, "one stats batch per epoch");
        let n_params = observed.params().len();
        for epoch_stats in &probe.stats {
            assert_eq!(epoch_stats.len(), n_params);
            for s in epoch_stats {
                assert!(!s.name.is_empty());
                assert!(
                    s.weight_norm.is_finite() && s.weight_norm > 0.0,
                    "{}",
                    s.name
                );
                assert!(s.grad_norm_mean.is_finite());
                assert!(s.grad_norm_max >= s.grad_norm_mean || s.grad_norm_max == 0.0);
                assert!(s.update_ratio.is_finite());
                assert_eq!(s.nonfinite, 0);
            }
        }
        assert!(probe.checkpoint.is_some());
        for (a, b) in plain.params().iter().zip(observed.params().iter()) {
            assert_eq!(
                a.w.data(),
                b.w.data(),
                "stats pass changed weights: {}",
                a.name
            );
        }
        // The checkpoint bytes reload to the trained weights.
        let restored = TokenLstm::from_bytes(probe.checkpoint.unwrap()).unwrap();
        assert_eq!(
            restored.predict_probs(&[0, 1, 2, 3]),
            observed.predict_probs(&[0, 1, 2, 3])
        );
    }

    #[test]
    fn should_stop_halts_vector_training_early() {
        let mut rng = Xoshiro256pp::seed_from_u64(22);
        let seqs = countdown_seqs(4, 10);
        let mut m = VectorLstm::new(2, 8, 1, &mut rng);
        let cfg = TrainConfig {
            history: 5,
            batch: 8,
            epochs: 10,
            clip: 5.0,
        };
        let mut opt = RmsProp::new(0.01);
        let mut probe = StatsProbe::new(Some(2));
        let losses = m.train_observed(&seqs, &cfg, &mut opt, &mut rng, &mut probe);
        assert_eq!(losses.len(), 2, "stopped after 2 of 10 epochs");
        assert_eq!(probe.stats.len(), 2);
    }

    #[test]
    #[should_panic]
    fn token_train_rejects_too_short_sequences() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut m = TokenLstm::new(4, 4, 4, 1, &mut rng);
        let cfg = TrainConfig {
            history: 8,
            batch: 4,
            epochs: 1,
            clip: 5.0,
        };
        let mut opt = Sgd::new(0.1);
        m.train(&[vec![0, 1, 2]], &cfg, &mut opt, &mut rng);
    }

    /// Synthetic chain: ΔT counts down linearly while the "phrase" channel
    /// ramps; the model must regress the next sample.
    fn countdown_seqs(n: usize, len: usize) -> Vec<Vec<Vec<f32>>> {
        (0..n)
            .map(|j| {
                (0..len)
                    .map(|i| {
                        let t = (len - 1 - i) as f32 / len as f32;
                        let p = (i as f32 + j as f32 * 0.1) / len as f32;
                        vec![t, p]
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn vector_lstm_learns_countdown() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let seqs = countdown_seqs(8, 10);
        let mut m = VectorLstm::new(2, 16, 2, &mut rng);
        let cfg = TrainConfig {
            history: 5,
            batch: 16,
            epochs: 60,
            clip: 5.0,
        };
        let mut opt = RmsProp::new(0.005);
        let losses = m.train(&seqs, &cfg, &mut opt, &mut rng);
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.3),
            "loss did not drop: first {} last {}",
            losses[0],
            losses.last().unwrap()
        );
        // Scores along a training-like sequence should be small.
        let scores = m.score_sequence(&seqs[0], 5);
        let avg: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(avg < 0.05, "avg score {avg}");
    }

    #[test]
    fn vector_lstm_flags_dissimilar_sequences() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let seqs = countdown_seqs(8, 10);
        let mut m = VectorLstm::new(2, 16, 2, &mut rng);
        let cfg = TrainConfig {
            history: 5,
            batch: 16,
            epochs: 60,
            clip: 5.0,
        };
        let mut opt = RmsProp::new(0.005);
        m.train(&seqs, &cfg, &mut opt, &mut rng);
        // A wildly different sequence must score worse than a familiar one.
        let alien: Vec<Vec<f32>> = (0..10).map(|i| vec![5.0, -3.0 + i as f32]).collect();
        let familiar_avg: f64 = {
            let s = m.score_sequence(&seqs[0], 5);
            s.iter().sum::<f64>() / s.len() as f64
        };
        let alien_avg: f64 = {
            let s = m.score_sequence(&alien, 5);
            s.iter().sum::<f64>() / s.len() as f64
        };
        assert!(
            alien_avg > familiar_avg * 10.0,
            "familiar {familiar_avg} vs alien {alien_avg}"
        );
    }

    #[test]
    fn vector_lstm_short_window_padding() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let m = VectorLstm::new(2, 8, 1, &mut rng);
        let w: Vec<&[f32]> = vec![&[0.5, 0.5]];
        let out = m.predict_next(&w, 5);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic]
    fn vector_train_rejects_bad_width() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut m = VectorLstm::new(2, 4, 1, &mut rng);
        let cfg = TrainConfig::default();
        let mut opt = RmsProp::new(0.01);
        m.train(&[vec![vec![1.0, 2.0, 3.0]]], &cfg, &mut opt, &mut rng);
    }

    #[test]
    fn score_sequence_matches_predict_next_loop() {
        // The workspace scorer must reproduce the naive windowed path:
        // per position, predict from the `history` preceding samples and
        // take the MSE against the observation.
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let m = VectorLstm::new(2, 8, 2, &mut rng);
        let seq = &countdown_seqs(1, 12)[0];
        let history = 5;
        let fast = m.score_sequence(seq, history);
        assert_eq!(fast.len(), seq.len() - 1);
        for t in 1..seq.len() {
            let lo = t.saturating_sub(history);
            let window: Vec<&[f32]> = seq[lo..t].iter().map(|v| v.as_slice()).collect();
            let pred = m.predict_next(&window, history);
            let want = mse_vec(&pred, &seq[t]);
            assert_eq!(fast[t - 1], want, "position {t}");
        }
    }

    #[test]
    fn stream_push_matches_batch_replay() {
        // Carried-state streaming must agree with re-running the net from
        // zero state over every prefix.
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let m = VectorLstm::new(2, 8, 2, &mut rng);
        let seq = &countdown_seqs(1, 14)[0];
        let batch = m.score_stream_batch(seq);
        let mut st = m.begin_stream();
        assert!(st.is_empty());
        let mut streamed = Vec::new();
        for sample in seq {
            if let Some(s) = m.stream_push(&mut st, sample) {
                streamed.push(s);
            }
        }
        assert_eq!(st.len(), seq.len());
        assert_eq!(streamed, batch);
        assert!(st.prediction().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn stream_push_rows_bit_identical_to_streams() {
        // A slot-resident batch stepped in waves must reproduce each
        // slot's sequential stream bitwise: scores, predictions, and a
        // mid-flight reset.
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let m = VectorLstm::new(3, 8, 2, &mut rng);
        let slots = 4usize;
        let seqs: Vec<Vec<Vec<f32>>> = (0..slots)
            .map(|s| {
                (0..6 + s)
                    .map(|_| (0..3).map(|_| rng.f32() - 0.5).collect())
                    .collect()
            })
            .collect();

        let mut sb = m.begin_stream_batch(slots);
        let mut wave_scores = Vec::new();
        let mut batched: Vec<Vec<Option<f64>>> = vec![Vec::new(); slots];
        let max_t = seqs.iter().map(|s| s.len()).max().unwrap();
        for t in 0..max_t {
            // Slot 2 is recycled after its 3rd event, as if its node was
            // evicted and a fresh one took the slot over.
            if t == 3 {
                sb.reset_slot(2);
            }
            let rows: Vec<usize> = (0..slots).filter(|&s| t < seqs[s].len()).collect();
            for &s in &rows {
                sb.input_row_mut(s).copy_from_slice(&seqs[s][t]);
            }
            m.stream_push_rows(&mut sb, &rows, &mut wave_scores);
            for (&s, sc) in rows.iter().zip(&wave_scores) {
                batched[s].push(*sc);
            }
        }

        for s in 0..slots {
            let mut st = m.begin_stream();
            let mut want = Vec::new();
            for (t, sample) in seqs[s].iter().enumerate() {
                if s == 2 && t == 3 {
                    st = m.begin_stream();
                }
                want.push(m.stream_push(&mut st, sample));
            }
            assert_eq!(batched[s], want, "slot {s} scores diverged");
            let pb: Vec<u32> = sb.prediction(s).iter().map(|x| x.to_bits()).collect();
            let ps: Vec<u32> = st.prediction().iter().map(|x| x.to_bits()).collect();
            assert_eq!(pb, ps, "slot {s} prediction diverged");
            assert_eq!(sb.len(s), st.len());
        }
    }
}
