//! Fully connected layer: `y = x W + b`.

use crate::mat::Mat;
use crate::param::Param;
use desh_util::Xoshiro256pp;

/// Linear layer with bias. Acts as the output head of the stacked LSTM
/// (projecting hidden state to vocabulary logits in phase 1, or to the
/// 2-state (ΔT, phrase) vector in phases 2/3).
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, shape [in, out].
    pub w: Param,
    /// Bias, shape [1, out].
    pub b: Param,
}

/// Cache from a dense forward pass, consumed by the backward pass.
#[derive(Debug)]
pub struct DenseCache {
    x: Mat,
}

impl Dense {
    /// New layer with Xavier-initialised weights and zero bias.
    pub fn new(input: usize, output: usize, name: &str, rng: &mut Xoshiro256pp) -> Self {
        Self {
            w: Param::xavier(&format!("{name}.w"), input, output, rng),
            b: Param::zeros(&format!("{name}.b"), 1, output),
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.w.w.rows()
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.w.w.cols()
    }

    /// Forward pass: returns `x W + b` and the cache for backprop.
    pub fn forward(&self, x: &Mat) -> (Mat, DenseCache) {
        let mut y = x.matmul(&self.w.w);
        y.add_row_broadcast(&self.b.w);
        (y, DenseCache { x: x.clone() })
    }

    /// Forward without keeping a cache (inference).
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut y = x.matmul(&self.w.w);
        y.add_row_broadcast(&self.b.w);
        y
    }

    /// Inference into a caller-held output buffer (no allocation once the
    /// buffer has the right shape).
    pub fn infer_into(&self, x: &Mat, y: &mut Mat) {
        x.matmul_into(&self.w.w, y);
        y.add_row_broadcast(&self.b.w);
    }

    /// Inference for one row of a slot-resident batch:
    /// `y.row(r) = x.row(r) @ W + b`, through the same single-row GEMV
    /// kernel a batch=1 [`Dense::infer_into`] uses, leaving every other
    /// row of `y` untouched. Bit-identical to the sequential path.
    pub fn infer_row_into(&self, x: &Mat, r: usize, y: &mut Mat) {
        x.matmul_row_into(r, &self.w.w, y);
        y.add_bias_row(r, &self.b.w);
    }

    /// Wave form of [`Dense::infer_row_into`]: all listed rows in one
    /// call, dense rows sharing weight sweeps through
    /// [`Mat::matmul_rows_into`] — bit-identical per row to the per-row
    /// loop. `rows` must be distinct.
    pub fn infer_rows_into(&self, x: &Mat, rows: &[usize], y: &mut Mat) {
        x.matmul_rows_into(rows, &self.w.w, y);
        for &r in rows {
            y.add_bias_row(r, &self.b.w);
        }
    }

    /// Backward pass: accumulates into `w.g` / `b.g`, returns `dx`.
    pub fn backward(&mut self, cache: &DenseCache, dy: &Mat) -> Mat {
        Self::backward_parts(&self.w.w, &mut self.w.g, &mut self.b.g, cache, dy)
    }

    /// Backward pass into caller-held gradient buffers (`&self`): the
    /// data-parallel trainer's per-shard path, where workers share the
    /// model immutably and each owns its own accumulators.
    pub fn backward_into(&self, cache: &DenseCache, dy: &Mat, dw: &mut Mat, db: &mut Mat) -> Mat {
        Self::backward_parts(&self.w.w, dw, db, cache, dy)
    }

    fn backward_parts(w: &Mat, dw: &mut Mat, db: &mut Mat, cache: &DenseCache, dy: &Mat) -> Mat {
        dw.add_assign(&cache.x.t_matmul(dy));
        db.add_assign(&dy.col_sums());
        dy.matmul_t(w)
    }

    /// Parameters in deterministic order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Immutable parameter view.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut d = Dense::new(2, 3, "d", &mut rng);
        d.w.w = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        d.b.w = Mat::from_vec(1, 3, vec![0.5, -0.5, 0.0]);
        let x = Mat::from_vec(1, 2, vec![1.0, -1.0]);
        let (y, _) = d.forward(&x);
        assert_eq!(y.data(), &[1.0 - 4.0 + 0.5, 2.0 - 5.0 - 0.5, 3.0 - 6.0]);
    }

    #[test]
    fn backward_gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut d = Dense::new(3, 2, "d", &mut rng);
        let x = Mat::from_fn(4, 3, |_, _| rng.f32() - 0.5);
        // Loss = sum(y^2)/2, so dy = y.
        let (y, cache) = d.forward(&x);
        let dx = d.backward(&cache, &y);

        let eps = 1e-3f32;
        // Check dW numerically.
        for idx in 0..6 {
            let orig = d.w.w.data()[idx];
            d.w.w.data_mut()[idx] = orig + eps;
            let lp: f32 = d.infer(&x).data().iter().map(|v| v * v / 2.0).sum();
            d.w.w.data_mut()[idx] = orig - eps;
            let lm: f32 = d.infer(&x).data().iter().map(|v| v * v / 2.0).sum();
            d.w.w.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = d.w.g.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "dW[{idx}]: num {num} vs ana {ana}"
            );
        }
        // Check dx numerically.
        let mut x2 = x.clone();
        for idx in 0..4 * 3 {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp: f32 = d.infer(&x2).data().iter().map(|v| v * v / 2.0).sum();
            x2.data_mut()[idx] = orig - eps;
            let lm: f32 = d.infer(&x2).data().iter().map(|v| v * v / 2.0).sum();
            x2.data_mut()[idx] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "dx[{idx}]: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut d = Dense::new(2, 2, "d", &mut rng);
        let x = Mat::full(1, 2, 1.0);
        let dy = Mat::full(1, 2, 1.0);
        let (_, c1) = d.forward(&x);
        d.backward(&c1, &dy);
        let after_one = d.w.g.clone();
        let (_, c2) = d.forward(&x);
        d.backward(&c2, &dy);
        let mut doubled = after_one.clone();
        doubled.scale(2.0);
        assert_eq!(d.w.g, doubled);
    }
}
