//! Checkpoint (de)serialization for the model types, built on
//! `desh-util::codec`. Deployments train offline (phases 1-2) and run
//! inference online (phase 3), so models must round-trip through bytes.

use crate::dense::Dense;
use crate::embedding::Embedding;
use crate::lstm::LstmLayer;
use crate::mat::Mat;
use crate::models::{TokenLstm, VectorLstm};
use crate::param::Param;
use crate::stacked::StackedLstm;
use bytes::Bytes;
use desh_util::codec::{CodecError, Decoder, Encoder};

const MAGIC: [u8; 4] = *b"DSHM";
const VERSION: u32 = 1;

fn put_mat(e: &mut Encoder, m: &Mat) {
    e.put_u64(m.rows() as u64);
    e.put_u64(m.cols() as u64);
    e.put_f32_slice(m.data());
}

fn get_mat(d: &mut Decoder) -> Result<Mat, CodecError> {
    let rows = d.u64()? as usize;
    let cols = d.u64()? as usize;
    let data = d.f32_vec()?;
    if data.len() != rows * cols {
        return Err(CodecError::LengthOverflow(data.len() as u64));
    }
    Ok(Mat::from_vec(rows, cols, data))
}

fn put_param(e: &mut Encoder, p: &Param) {
    e.put_str(&p.name);
    put_mat(e, &p.w);
}

fn get_param(d: &mut Decoder) -> Result<Param, CodecError> {
    let name = d.string()?;
    let w = get_mat(d)?;
    let g = Mat::zeros(w.rows(), w.cols());
    Ok(Param { w, g, name })
}

fn put_dense(e: &mut Encoder, layer: &Dense) {
    put_param(e, &layer.w);
    put_param(e, &layer.b);
}

fn get_dense(d: &mut Decoder) -> Result<Dense, CodecError> {
    Ok(Dense {
        w: get_param(d)?,
        b: get_param(d)?,
    })
}

fn put_lstm_layer(e: &mut Encoder, layer: &LstmLayer) {
    e.put_u64(layer.input_dim() as u64);
    e.put_u64(layer.hidden_dim() as u64);
    put_param(e, &layer.wx);
    put_param(e, &layer.wh);
    put_param(e, &layer.b);
}

fn get_lstm_layer(d: &mut Decoder) -> Result<LstmLayer, CodecError> {
    let input = d.u64()? as usize;
    let hidden = d.u64()? as usize;
    let wx = get_param(d)?;
    let wh = get_param(d)?;
    let b = get_param(d)?;
    // Rebuild through the constructor to restore private dims, then swap in
    // the stored weights.
    let mut rng = desh_util::Xoshiro256pp::seed_from_u64(0);
    let mut layer = LstmLayer::new(input, hidden, "loaded", &mut rng);
    layer.wx = wx;
    layer.wh = wh;
    layer.b = b;
    Ok(layer)
}

fn put_stacked(e: &mut Encoder, net: &StackedLstm) {
    e.put_u64(net.layers.len() as u64);
    for l in &net.layers {
        put_lstm_layer(e, l);
    }
    put_dense(e, &net.head);
}

fn get_stacked(d: &mut Decoder) -> Result<StackedLstm, CodecError> {
    let n = d.u64()? as usize;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        layers.push(get_lstm_layer(d)?);
    }
    let head = get_dense(d)?;
    Ok(StackedLstm { layers, head })
}

impl TokenLstm {
    /// Serialize weights to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut e = Encoder::with_header(MAGIC, VERSION);
        e.put_u8(1); // model kind tag
        put_mat(&mut e, &self.embed.table.w);
        put_stacked(&mut e, &self.net);
        e.finish()
    }

    /// Restore from bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: Bytes) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        d.expect_header(MAGIC, VERSION)?;
        let kind = d.u8()?;
        if kind != 1 {
            return Err(CodecError::BadMagic {
                expected: [1, 0, 0, 0],
                found: [kind, 0, 0, 0],
            });
        }
        let table = get_mat(&mut d)?;
        let net = get_stacked(&mut d)?;
        Ok(Self {
            embed: Embedding::from_table(table),
            net,
        })
    }
}

impl VectorLstm {
    /// Serialize weights to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut e = Encoder::with_header(MAGIC, VERSION);
        e.put_u8(2);
        e.put_u64(self.dim() as u64);
        put_stacked(&mut e, &self.net);
        e.finish()
    }

    /// Restore from bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: Bytes) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        d.expect_header(MAGIC, VERSION)?;
        let kind = d.u8()?;
        if kind != 2 {
            return Err(CodecError::BadMagic {
                expected: [2, 0, 0, 0],
                found: [kind, 0, 0, 0],
            });
        }
        let dim = d.u64()? as usize;
        let net = get_stacked(&mut d)?;
        let mut rng = desh_util::Xoshiro256pp::seed_from_u64(0);
        let mut model = VectorLstm::new(dim, net.hidden_dim(), net.depth(), &mut rng);
        model.net = net;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desh_util::Xoshiro256pp;

    #[test]
    fn token_lstm_round_trip_preserves_outputs() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let m = TokenLstm::new(9, 6, 10, 2, &mut rng);
        let bytes = m.to_bytes();
        let m2 = TokenLstm::from_bytes(bytes).unwrap();
        let ctx = [1u32, 4, 7, 2];
        assert_eq!(m.predict_probs(&ctx), m2.predict_probs(&ctx));
    }

    #[test]
    fn vector_lstm_round_trip_preserves_outputs() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let m = VectorLstm::new(2, 8, 2, &mut rng);
        let bytes = m.to_bytes();
        let m2 = VectorLstm::from_bytes(bytes).unwrap();
        let w: Vec<&[f32]> = vec![&[0.2, 0.8], &[0.1, 0.9]];
        assert_eq!(m.predict_next(&w, 5), m2.predict_next(&w, 5));
    }

    #[test]
    fn wrong_kind_tag_rejected() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let token = TokenLstm::new(4, 3, 4, 1, &mut rng);
        let bytes = token.to_bytes();
        assert!(VectorLstm::from_bytes(bytes).is_err());
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let m = VectorLstm::new(2, 4, 1, &mut rng);
        let bytes = m.to_bytes();
        let cut = bytes.slice(0..bytes.len() / 2);
        assert!(VectorLstm::from_bytes(cut).is_err());
    }
}
