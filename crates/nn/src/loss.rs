//! Loss functions: categorical cross-entropy (phase 1) and mean squared
//! error (phases 2/3), per Table 5 of the paper.

use crate::mat::Mat;

/// Row-wise softmax.
pub fn softmax(logits: &Mat) -> Mat {
    let mut out = Mat::zeros(logits.rows(), logits.cols());
    for r in 0..logits.rows() {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let orow = out.row_mut(r);
        for (o, &x) in orow.iter_mut().zip(row) {
            let e = (x - max).exp();
            *o = e;
            sum += e;
        }
        for o in orow.iter_mut() {
            *o /= sum;
        }
    }
    out
}

/// Softmax + categorical cross-entropy against integer class targets.
/// Returns (mean loss, gradient w.r.t. logits). The gradient is the classic
/// `(softmax - onehot) / batch`.
pub fn softmax_xent(logits: &Mat, targets: &[u32]) -> (f64, Mat) {
    softmax_xent_denom(logits, targets, logits.rows())
}

/// [`softmax_xent`] with an explicit normalising denominator: loss and
/// gradient are divided by `denom` instead of the local row count. The
/// data-parallel trainer evaluates each shard's rows against the *full*
/// minibatch size, so the tree-reduced sum of shard gradients equals the
/// one-shot batch gradient.
pub fn softmax_xent_denom(logits: &Mat, targets: &[u32], denom: usize) -> (f64, Mat) {
    assert_eq!(logits.rows(), targets.len());
    assert!(denom >= logits.rows(), "denominator smaller than row count");
    let probs = softmax(logits);
    let mut loss = 0.0f64;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        let t = t as usize;
        assert!(t < logits.cols(), "target class out of range");
        let p = probs[(r, t)].max(1e-12);
        loss -= (p as f64).ln();
        grad[(r, t)] -= 1.0;
    }
    grad.scale(1.0 / denom as f32);
    (loss / denom as f64, grad)
}

/// Mean squared error between prediction and target matrices.
/// Returns (mean-per-element loss, gradient w.r.t. prediction).
pub fn mse(pred: &Mat, target: &Mat) -> (f64, Mat) {
    mse_denom(pred, target, pred.rows() * pred.cols())
}

/// [`mse`] with an explicit element-count denominator (the full
/// minibatch's rows × cols; see [`softmax_xent_denom`] for why the
/// sharded trainer needs this).
pub fn mse_denom(pred: &Mat, target: &Mat, denom_elems: usize) -> (f64, Mat) {
    assert_eq!(pred.shape(), target.shape());
    assert!(
        denom_elems >= pred.data().len(),
        "denominator smaller than element count"
    );
    let n = denom_elems as f64;
    let mut grad = Mat::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f64;
    for i in 0..pred.data().len() {
        let d = pred.data()[i] - target.data()[i];
        loss += (d as f64) * (d as f64);
        grad.data_mut()[i] = 2.0 * d / n as f32;
    }
    (loss / n, grad)
}

/// MSE between two flat vectors (used at inference to score how closely a
/// predicted sample matches a trained failure chain; the paper thresholds
/// this at 0.5).
pub fn mse_vec(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum::<f64>()
        / a.len() as f64
}

/// Top-k class indices of a logit/probability row, highest first. Used by
/// the DeepLog-style baseline ("actual value appears in the top g keys").
pub fn top_k(row: &[f32], k: usize) -> Vec<u32> {
    let mut idx: Vec<u32> = (0..row.len() as u32).collect();
    idx.sort_by(|&a, &b| row[b as usize].partial_cmp(&row[a as usize]).unwrap());
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, -10.0, 0.0, 10.0]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&x| x > 0.0));
        }
        // Monotone in logits.
        assert!(p[(0, 2)] > p[(0, 1)] && p[(0, 1)] > p[(0, 0)]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![1001.0, 1002.0, 1003.0]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn xent_perfect_prediction_is_near_zero() {
        let logits = Mat::from_vec(1, 3, vec![100.0, 0.0, 0.0]);
        let (loss, _) = softmax_xent(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn xent_uniform_is_log_v() {
        let logits = Mat::zeros(2, 4);
        let (loss, _) = softmax_xent(&logits, &[1, 3]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn xent_gradient_check() {
        let logits = Mat::from_vec(2, 3, vec![0.3, -0.2, 0.9, 1.2, 0.0, -0.7]);
        let targets = [2u32, 0];
        let (_, grad) = softmax_xent(&logits, &targets);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (loss_p, _) = softmax_xent(&lp, &targets);
            let (loss_m, _) = softmax_xent(&lm, &targets);
            let num = ((loss_p - loss_m) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: {num} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn mse_basics_and_gradient() {
        let pred = Mat::from_vec(1, 2, vec![1.0, 3.0]);
        let target = Mat::from_vec(1, 2, vec![0.0, 1.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - (1.0 + 4.0) / 2.0).abs() < 1e-9);
        assert_eq!(grad.data(), &[1.0, 2.0]);
        let (zero, _) = mse(&pred, &pred);
        assert_eq!(zero, 0.0);
    }

    #[test]
    fn mse_vec_matches_mat_version() {
        let a = [0.5f32, 1.5, -2.0];
        let b = [0.0f32, 1.0, -1.0];
        let expected = (0.25 + 0.25 + 1.0) / 3.0;
        assert!((mse_vec(&a, &b) - expected).abs() < 1e-9);
    }

    #[test]
    fn top_k_orders_descending() {
        let row = [0.1f32, 0.7, 0.05, 0.15];
        assert_eq!(top_k(&row, 2), vec![1, 3]);
        assert_eq!(top_k(&row, 10), vec![1, 3, 0, 2]);
    }
}
