//! Learning-rate schedules.
//!
//! The training loops expose a flat learning rate; these helpers compute
//! the rate for an epoch so callers can decay it between epochs, which the
//! longer phase-2 runs benefit from.

/// A learning-rate schedule: epoch index → learning rate.
pub trait Schedule {
    /// Rate to use for `epoch` (0-based).
    fn rate(&self, epoch: usize) -> f32;
}

/// Constant rate.
#[derive(Debug, Clone, Copy)]
pub struct Constant(pub f32);

impl Schedule for Constant {
    fn rate(&self, _epoch: usize) -> f32 {
        self.0
    }
}

/// Multiply by `factor` every `every` epochs.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial rate.
    pub base: f32,
    /// Decay multiplier per step (0 < factor <= 1).
    pub factor: f32,
    /// Epochs between decays.
    pub every: usize,
}

impl Schedule for StepDecay {
    fn rate(&self, epoch: usize) -> f32 {
        assert!(self.every > 0);
        self.base * self.factor.powi((epoch / self.every) as i32)
    }
}

/// Cosine annealing from `base` to `floor` over `total` epochs.
#[derive(Debug, Clone, Copy)]
pub struct Cosine {
    /// Initial rate.
    pub base: f32,
    /// Final rate.
    pub floor: f32,
    /// Total epochs of the run.
    pub total: usize,
}

impl Schedule for Cosine {
    fn rate(&self, epoch: usize) -> f32 {
        if self.total <= 1 {
            return self.floor;
        }
        let t = (epoch.min(self.total - 1)) as f32 / (self.total - 1) as f32;
        let cos = (std::f32::consts::PI * t).cos();
        self.floor + (self.base - self.floor) * 0.5 * (1.0 + cos)
    }
}

/// Linear warmup into another schedule.
#[derive(Debug, Clone, Copy)]
pub struct Warmup<S> {
    /// Epochs of linear ramp from ~0 to the inner schedule's rate.
    pub epochs: usize,
    /// Schedule after warmup.
    pub inner: S,
}

impl<S: Schedule> Schedule for Warmup<S> {
    fn rate(&self, epoch: usize) -> f32 {
        if epoch < self.epochs {
            self.inner.rate(0) * (epoch + 1) as f32 / self.epochs as f32
        } else {
            self.inner.rate(epoch - self.epochs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Constant(0.1);
        assert_eq!(s.rate(0), 0.1);
        assert_eq!(s.rate(999), 0.1);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let s = StepDecay {
            base: 0.4,
            factor: 0.5,
            every: 10,
        };
        assert_eq!(s.rate(0), 0.4);
        assert_eq!(s.rate(9), 0.4);
        assert_eq!(s.rate(10), 0.2);
        assert_eq!(s.rate(25), 0.1);
    }

    #[test]
    fn cosine_spans_base_to_floor_monotonically() {
        let s = Cosine {
            base: 0.3,
            floor: 0.01,
            total: 50,
        };
        assert!((s.rate(0) - 0.3).abs() < 1e-6);
        assert!((s.rate(49) - 0.01).abs() < 1e-6);
        for e in 1..50 {
            assert!(s.rate(e) <= s.rate(e - 1) + 1e-7, "not monotone at {e}");
        }
    }

    #[test]
    fn warmup_ramps_then_defers() {
        let s = Warmup {
            epochs: 5,
            inner: Constant(0.5),
        };
        assert!(s.rate(0) < s.rate(4));
        assert!((s.rate(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.rate(10), 0.5);
    }

    #[test]
    fn schedule_drives_optimizer_rate() {
        use crate::optim::{Optimizer, Sgd};
        let sched = StepDecay {
            base: 0.2,
            factor: 0.1,
            every: 1,
        };
        let mut opt = Sgd::new(sched.rate(0));
        assert_eq!(opt.learning_rate(), 0.2);
        opt.set_learning_rate(sched.rate(1));
        assert!((opt.learning_rate() - 0.02).abs() < 1e-7);
    }
}
