//! A GRU layer (Cho et al. 2014) with full backpropagation through time.
//!
//! The paper argues LSTM is "a preferable choice for Desh over other
//! RNNs"; this layer exists to substantiate that comparison empirically
//! (see the `ablation_rnn` experiment binary) rather than take it on
//! faith. Gate layout in the fused `[B, 3H]` pre-activation is `[r | z |
//! n]` (reset, update, candidate), with the candidate using the *reset*
//! hidden state as in the original formulation:
//!
//! ```text
//! r = σ(x Wxr + h Whr + br)
//! z = σ(x Wxz + h Whz + bz)
//! n = tanh(x Wxn + (r ⊙ h) Whn + bn)
//! h' = (1 - z) ⊙ n + z ⊙ h
//! ```

use crate::act::{dsigmoid_from_out, dtanh_from_out};
use crate::mat::Mat;
use crate::param::Param;
use desh_util::Xoshiro256pp;

/// One GRU layer.
#[derive(Debug, Clone)]
pub struct GruLayer {
    /// Input-to-gates weights, shape [input, 3*hidden], columns `[r|z|n]`.
    pub wx: Param,
    /// Hidden-to-gates weights, shape [hidden, 3*hidden].
    pub wh: Param,
    /// Gate bias, shape [1, 3*hidden].
    pub b: Param,
    hidden: usize,
    input: usize,
}

/// Per-timestep cache for the backward pass.
#[derive(Debug)]
struct StepCache {
    x: Mat,
    h_prev: Mat,
    r: Mat,
    z: Mat,
    n: Mat,
    /// `r ⊙ h_prev`, the candidate's recurrent input.
    rh: Mat,
}

/// Tape recorded by a forward pass.
#[derive(Debug)]
pub struct GruTape {
    steps: Vec<StepCache>,
}

/// Reusable scratch for one GRU layer: fused `[B, 3H]` pre-activations
/// for the input and recurrent halves, plus the candidate's `r ⊙ h` input
/// and its `[B, H]` product with the n-columns of `Wh`. Holding one across
/// timesteps makes `step_into` allocation-free.
#[derive(Debug, Clone, Default)]
pub struct GruScratch {
    pre: Mat,
    hw: Mat,
    rh: Mat,
    rh_n: Mat,
}

impl GruScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl GruLayer {
    /// New layer with Xavier weights.
    pub fn new(input: usize, hidden: usize, name: &str, rng: &mut Xoshiro256pp) -> Self {
        Self {
            wx: Param::xavier(&format!("{name}.wx"), input, 3 * hidden, rng),
            wh: Param::xavier(&format!("{name}.wh"), hidden, 3 * hidden, rng),
            b: Param::zeros(&format!("{name}.b"), 1, 3 * hidden),
            hidden,
            input,
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Shared pre-activation GEMMs into the scratch:
    /// `pre = x @ Wx + b` and `hw = h_prev @ Wh`.
    fn preactivations(&self, x: &Mat, h_prev: &Mat, ws: &mut GruScratch) {
        debug_assert_eq!(x.cols(), self.input);
        debug_assert_eq!(h_prev.cols(), self.hidden);
        x.matmul_into(&self.wx.w, &mut ws.pre);
        ws.pre.add_row_broadcast(&self.b.w);
        h_prev.matmul_into(&self.wh.w, &mut ws.hw);
    }

    /// One step of gate math for the training path. Returns
    /// (r, z, n, rh, h_new); everything transient lives in `ws`.
    fn gates_with(&self, x: &Mat, h_prev: &Mat, ws: &mut GruScratch) -> (Mat, Mat, Mat, Mat, Mat) {
        let batch = x.rows();
        let hsz = self.hidden;
        self.preactivations(x, h_prev, ws);

        let mut r = Mat::zeros(batch, hsz);
        let mut z = Mat::zeros(batch, hsz);
        let mut rh = Mat::zeros(batch, hsz);
        for row in 0..batch {
            // Fused reset/update gate kernel; same per-element math as the
            // inference path so the two stay bitwise consistent.
            crate::simd::gru_gates_train_rz(
                ws.pre.row(row),
                ws.hw.row(row),
                h_prev.row(row),
                r.row_mut(row),
                z.row_mut(row),
                rh.row_mut(row),
            );
        }
        // Candidate uses (r ⊙ h_prev) through the n-columns of Wh, read in
        // place rather than materialising the column slice.
        rh.matmul_cols_into(&self.wh.w, 2 * hsz, 3 * hsz, &mut ws.rh_n);
        let mut n = Mat::zeros(batch, hsz);
        let mut h = Mat::zeros(batch, hsz);
        for row in 0..batch {
            crate::simd::gru_gates_train_nh(
                ws.pre.row(row),
                ws.rh_n.row(row),
                h_prev.row(row),
                z.row(row),
                n.row_mut(row),
                h.row_mut(row),
            );
        }
        (r, z, n, rh, h)
    }

    /// One timestep without recording a tape, updating `h` in place.
    /// Allocation-free once the scratch buffers are warm: the reset gate
    /// only ever exists fused into `r ⊙ h`, and the update gate is
    /// recomputed from the (still intact) pre-activations at combine time.
    pub fn step_into(&self, x: &Mat, h: &mut Mat, ws: &mut GruScratch) {
        let batch = x.rows();
        let hsz = self.hidden;
        self.preactivations(x, h, ws);
        if ws.rh.shape() != (batch, hsz) {
            ws.rh.reset(batch, hsz);
        }
        for row in 0..batch {
            // Fused σ(pre_r + hw_r) ⊙ h pass per batch row.
            crate::simd::gru_rh_step(
                ws.pre.row(row),
                ws.hw.row(row),
                h.row(row),
                ws.rh.row_mut(row),
            );
        }
        ws.rh
            .matmul_cols_into(&self.wh.w, 2 * hsz, 3 * hsz, &mut ws.rh_n);
        for row in 0..batch {
            crate::simd::gru_combine_step(
                ws.pre.row(row),
                ws.hw.row(row),
                ws.rh_n.row(row),
                h.row_mut(row),
            );
        }
    }

    /// One timestep with a throwaway scratch (convenience).
    pub fn step_infer(&self, x: &Mat, h: &mut Mat) {
        let mut ws = GruScratch::new();
        self.step_into(x, h, &mut ws);
    }

    /// Forward over a sequence from zero state, reusing a caller-held
    /// scratch; returns hidden outputs and the tape.
    pub fn forward_seq_ws(&self, xs: &[Mat], ws: &mut GruScratch) -> (Vec<Mat>, GruTape) {
        assert!(!xs.is_empty());
        let batch = xs[0].rows();
        let mut h = Mat::zeros(batch, self.hidden);
        let mut hs = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            let (r, z, n, rh, h_new) = self.gates_with(x, &h, ws);
            steps.push(StepCache {
                x: x.clone(),
                h_prev: h.clone(),
                r,
                z,
                n,
                rh,
            });
            h = h_new.clone();
            hs.push(h_new);
        }
        (hs, GruTape { steps })
    }

    /// Forward over a sequence with a throwaway scratch.
    pub fn forward_seq(&self, xs: &[Mat]) -> (Vec<Mat>, GruTape) {
        let mut ws = GruScratch::new();
        self.forward_seq_ws(xs, &mut ws)
    }

    /// Inference: final hidden output only, via the streaming step (no
    /// tape allocation at all).
    pub fn infer_seq(&self, xs: &[Mat]) -> Mat {
        assert!(!xs.is_empty());
        let mut h = Mat::zeros(xs[0].rows(), self.hidden);
        let mut ws = GruScratch::new();
        for x in xs {
            self.step_into(x, &mut h, &mut ws);
        }
        h
    }

    /// BPTT. `dhs[t]` is the gradient w.r.t. step-`t` hidden output.
    /// Accumulates parameter gradients, returns per-step input gradients.
    pub fn backward_seq(&mut self, tape: &GruTape, dhs: &[Mat]) -> Vec<Mat> {
        assert_eq!(tape.steps.len(), dhs.len());
        let t_len = tape.steps.len();
        let batch = tape.steps[0].x.rows();
        let hsz = self.hidden;
        let whn = self.wh.w.col_slice(2 * hsz, 3 * hsz);

        let mut dh_next = Mat::zeros(batch, hsz);
        let mut dxs = vec![Mat::zeros(0, 0); t_len];

        for t in (0..t_len).rev() {
            let s = &tape.steps[t];
            let mut dh = dhs[t].clone();
            dh.add_assign(&dh_next);

            // Gate gradients.
            let mut dp = Mat::zeros(batch, 3 * hsz); // pre-activation grads [r|z|n]
            let mut dh_prev = Mat::zeros(batch, hsz);
            let mut drh = Mat::zeros(batch, hsz);
            for row in 0..batch {
                for k in 0..hsz {
                    let z = s.z[(row, k)];
                    let n = s.n[(row, k)];
                    let hp = s.h_prev[(row, k)];
                    let dhv = dh[(row, k)];

                    let dz = dhv * (hp - n);
                    let dn = dhv * (1.0 - z);
                    dh_prev.row_mut(row)[k] += dhv * z;

                    let dpn = dn * dtanh_from_out(n);
                    dp.row_mut(row)[2 * hsz + k] = dpn;
                    dp.row_mut(row)[hsz + k] = dz * dsigmoid_from_out(z);
                }
            }
            // drh = dpn @ Whnᵀ ; dr = drh ⊙ h_prev ; dh_prev += drh ⊙ r.
            let dpn_block = dp.col_slice(2 * hsz, 3 * hsz);
            drh.add_assign(&dpn_block.matmul_t(&whn));
            for row in 0..batch {
                for k in 0..hsz {
                    let r = s.r[(row, k)];
                    let hp = s.h_prev[(row, k)];
                    let dr = drh[(row, k)] * hp;
                    dp.row_mut(row)[k] = dr * dsigmoid_from_out(r);
                    dh_prev.row_mut(row)[k] += drh[(row, k)] * r;
                }
            }

            // Parameter gradients. Wx and b see the full dp; Wh splits: the
            // r/z columns take h_prev, the n columns take rh.
            self.wx.g.add_assign(&s.x.t_matmul(&dp));
            self.b.g.add_assign(&dp.col_sums());
            // Build the Wh gradient blockwise.
            let dp_rz = dp.col_slice(0, 2 * hsz);
            let g_rz = s.h_prev.t_matmul(&dp_rz); // [H, 2H]
            let g_n = s.rh.t_matmul(&dpn_block); // [H, H]
            for i in 0..hsz {
                for j in 0..2 * hsz {
                    self.wh.g[(i, j)] += g_rz[(i, j)];
                }
                for j in 0..hsz {
                    self.wh.g[(i, 2 * hsz + j)] += g_n[(i, j)];
                }
            }

            // Input gradient: dx = dp @ Wxᵀ.
            dxs[t] = dp.matmul_t(&self.wx.w);
            // Recurrent gradient: r/z blocks through Wh, plus candidate path.
            let wh_rz = {
                let mut m = Mat::zeros(hsz, 2 * hsz);
                for i in 0..hsz {
                    for j in 0..2 * hsz {
                        m[(i, j)] = self.wh.w[(i, j)];
                    }
                }
                m
            };
            dh_prev.add_assign(&dp_rz.matmul_t(&wh_rz));
            dh_next = dh_prev;
        }
        dxs
    }

    /// Parameters in deterministic order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Immutable view.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(rows: usize, cols: usize, rng: &mut Xoshiro256pp) -> Mat {
        Mat::from_fn(rows, cols, |_, _| rng.f32() - 0.5)
    }

    fn loss_of(layer: &GruLayer, xs: &[Mat]) -> f64 {
        let (hs, _) = layer.forward_seq(xs);
        hs.iter().map(|h| h.sq_norm()).sum::<f64>() * 0.5
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let layer = GruLayer::new(3, 5, "g", &mut rng);
        let xs: Vec<Mat> = (0..6).map(|_| rand_mat(2, 3, &mut rng)).collect();
        let (hs, tape) = layer.forward_seq(&xs);
        assert_eq!(hs.len(), 6);
        assert_eq!(tape.steps.len(), 6);
        for h in &hs {
            assert_eq!(h.shape(), (2, 5));
            // h is a convex combination of tanh outputs and prior h -> |h|<1.
            assert!(h.data().iter().all(|x| x.abs() < 1.0));
        }
    }

    #[test]
    fn gru_weight_gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut layer = GruLayer::new(2, 3, "g", &mut rng);
        let xs: Vec<Mat> = (0..4).map(|_| rand_mat(2, 2, &mut rng)).collect();
        let (hs, tape) = layer.forward_seq(&xs);
        layer.backward_seq(&tape, &hs);

        let eps = 1e-3f32;
        for pname in ["wx", "wh", "b"] {
            fn get<'a>(l: &'a mut GruLayer, n: &str) -> &'a mut Param {
                match n {
                    "wx" => &mut l.wx,
                    "wh" => &mut l.wh,
                    _ => &mut l.b,
                }
            }
            let len = get(&mut layer, pname).len();
            let grads = get(&mut layer, pname).g.data().to_vec();
            for s in 0..6usize {
                let idx = (s * 29) % len;
                let orig = get(&mut layer, pname).w.data()[idx];
                get(&mut layer, pname).w.data_mut()[idx] = orig + eps;
                let lp = loss_of(&layer, &xs);
                get(&mut layer, pname).w.data_mut()[idx] = orig - eps;
                let lm = loss_of(&layer, &xs);
                get(&mut layer, pname).w.data_mut()[idx] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (num - grads[idx]).abs() < 3e-2 * (1.0 + num.abs()),
                    "{pname}[{idx}]: numeric {num} vs analytic {}",
                    grads[idx]
                );
            }
        }
    }

    #[test]
    fn gru_input_gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut layer = GruLayer::new(2, 3, "g", &mut rng);
        let mut xs: Vec<Mat> = (0..3).map(|_| rand_mat(1, 2, &mut rng)).collect();
        let (hs, tape) = layer.forward_seq(&xs);
        let dxs = layer.backward_seq(&tape, &hs);
        let eps = 1e-3f32;
        for t in 0..3 {
            for idx in 0..2 {
                let orig = xs[t].data()[idx];
                xs[t].data_mut()[idx] = orig + eps;
                let lp = loss_of(&layer, &xs);
                xs[t].data_mut()[idx] = orig - eps;
                let lm = loss_of(&layer, &xs);
                xs[t].data_mut()[idx] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let ana = dxs[t].data()[idx];
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                    "dx[{t}][{idx}]: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn gru_learns_a_simple_pattern() {
        // Regress h -> next scalar of an alternating sequence.
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut layer = GruLayer::new(1, 8, "g", &mut rng);
        let mut head = crate::dense::Dense::new(8, 1, "h", &mut rng);
        let seq: Vec<f32> = (0..20)
            .map(|i| if i % 2 == 0 { 0.9 } else { -0.9 })
            .collect();
        let mut last_loss = f64::MAX;
        for _ in 0..300 {
            let xs: Vec<Mat> = seq[..seq.len() - 1]
                .iter()
                .map(|&v| Mat::from_vec(1, 1, vec![v]))
                .collect();
            let (hs, tape) = layer.forward_seq(&xs);
            // Loss over the last step only.
            let (y, hcache) = head.forward(hs.last().unwrap());
            let target = Mat::from_vec(1, 1, vec![seq[seq.len() - 1]]);
            let (loss, dy) = crate::loss::mse(&y, &target);
            last_loss = loss;
            let dh_last = head.backward(&hcache, &dy);
            let mut dhs: Vec<Mat> = (0..xs.len()).map(|_| Mat::zeros(1, 8)).collect();
            *dhs.last_mut().unwrap() = dh_last;
            layer.backward_seq(&tape, &dhs);
            let mut params = layer.params_mut();
            params.extend(head.params_mut());
            let mut opt = crate::optim::Sgd::new(0.05);
            use crate::optim::Optimizer;
            opt.step(&mut params);
        }
        assert!(last_loss < 0.05, "GRU failed to fit: loss {last_loss}");
    }
}
