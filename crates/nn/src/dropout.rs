//! Inverted dropout.
//!
//! Not part of the paper's configuration (its models are small enough not
//! to need it), but a standard regulariser for anyone scaling the
//! substrate to bigger vocabularies. Inverted scaling (divide by the keep
//! probability at train time) keeps inference a no-op.

use crate::mat::Mat;
use desh_util::Xoshiro256pp;

/// Dropout layer with keep probability `1 - rate`.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    rate: f64,
}

impl Dropout {
    /// New layer dropping activations with probability `rate` in [0, 1).
    pub fn new(rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0,1)");
        Self { rate }
    }

    /// Drop rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Training-mode forward: zero each element with probability `rate`,
    /// scale survivors by `1/(1-rate)`. Returns the output and the mask
    /// (already scaled) for the backward pass.
    pub fn forward_train(&self, x: &Mat, rng: &mut Xoshiro256pp) -> (Mat, Mat) {
        let keep = 1.0 - self.rate;
        let scale = (1.0 / keep) as f32;
        let mask = Mat::from_fn(x.rows(), x.cols(), |_, _| {
            if rng.chance(keep) {
                scale
            } else {
                0.0
            }
        });
        (x.hadamard(&mask), mask)
    }

    /// Inference-mode forward: identity (inverted dropout).
    pub fn forward_infer(&self, x: &Mat) -> Mat {
        x.clone()
    }

    /// Backward: gradients flow only through kept elements, with the same
    /// scaling.
    pub fn backward(&self, dy: &Mat, mask: &Mat) -> Mat {
        dy.hadamard(mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let d = Dropout::new(0.5);
        let x = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward_infer(&x), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let d = Dropout::new(0.3);
        let x = Mat::full(1, 10_000, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let (y, _) = d.forward_train(&x, &mut rng);
        let mean: f32 = y.data().iter().sum::<f32>() / y.data().len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "expectation drifted: {mean}");
    }

    #[test]
    fn dropped_fraction_matches_rate() {
        let d = Dropout::new(0.4);
        let x = Mat::full(1, 10_000, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let (y, _) = d.forward_train(&x, &mut rng);
        let dropped = y.data().iter().filter(|&&v| v == 0.0).count() as f64 / 10_000.0;
        assert!((dropped - 0.4).abs() < 0.03, "dropped {dropped}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let d = Dropout::new(0.5);
        let x = Mat::full(2, 3, 2.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let (y, mask) = d.forward_train(&x, &mut rng);
        let dy = Mat::full(2, 3, 1.0);
        let dx = d.backward(&dy, &mask);
        // dx is zero exactly where y is zero, scaled elsewhere.
        for (o, g) in y.data().iter().zip(dx.data()) {
            if *o == 0.0 {
                assert_eq!(*g, 0.0);
            } else {
                assert_eq!(*g, 2.0);
            }
        }
    }

    #[test]
    fn zero_rate_is_identity_in_training_too() {
        let d = Dropout::new(0.0);
        let x = Mat::from_vec(1, 4, vec![1.0, -2.0, 3.0, -4.0]);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let (y, _) = d.forward_train(&x, &mut rng);
        assert_eq!(y, x);
    }

    #[test]
    #[should_panic]
    fn rate_one_rejected() {
        Dropout::new(1.0);
    }
}
