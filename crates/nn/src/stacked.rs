//! Stacked (multi-layer) LSTM with a dense head.
//!
//! The paper's Figure 1b: input layer → multiple hidden LSTM layers →
//! output layer. Two hidden layers is the configuration used throughout
//! the evaluation ("more than 1 hidden layer strengthens LSTM's efficacy
//! to remember past phrases").

use crate::dense::{Dense, DenseCache};
use crate::lstm::{LstmLayer, LstmScratch, LstmState, LstmTape};
use crate::mat::Mat;
use crate::param::Param;
use desh_util::Xoshiro256pp;

/// Reusable workspace for a whole stacked network: one [`LstmScratch`] per
/// recurrent layer plus the head's output buffer. One of these carried
/// across calls makes the streaming step and the training forward pass
/// allocation-free in the gate pipeline.
#[derive(Debug, Clone, Default)]
pub struct StackedScratch {
    layers: Vec<LstmScratch>,
    y: Mat,
}

impl StackedScratch {
    /// Empty workspace; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stacked LSTM: `layers` recurrent layers followed by a linear head that
/// is applied to the **last** timestep's top hidden state.
#[derive(Debug, Clone)]
pub struct StackedLstm {
    /// Recurrent layers, bottom first.
    pub layers: Vec<LstmLayer>,
    /// Output projection from top hidden state.
    pub head: Dense,
}

/// Tape for a stacked forward pass.
#[derive(Debug)]
pub struct StackedTape {
    layer_tapes: Vec<LstmTape>,
    /// Hidden outputs of each layer per step (needed to size zero grads).
    layer_hs: Vec<Vec<Mat>>,
    head_cache: DenseCache,
    seq_len: usize,
}

impl StackedLstm {
    /// Build with `n_layers` hidden layers of width `hidden`.
    pub fn new(
        input: usize,
        hidden: usize,
        n_layers: usize,
        output: usize,
        rng: &mut Xoshiro256pp,
    ) -> Self {
        assert!(n_layers >= 1);
        let mut layers = Vec::with_capacity(n_layers);
        for l in 0..n_layers {
            let in_dim = if l == 0 { input } else { hidden };
            layers.push(LstmLayer::new(in_dim, hidden, &format!("lstm{l}"), rng));
        }
        Self {
            layers,
            head: Dense::new(hidden, output, "head", rng),
        }
    }

    /// Input width of the bottom layer.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output width of the head.
    pub fn output_dim(&self) -> usize {
        self.head.output_dim()
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.layers[0].hidden_dim()
    }

    /// Number of recurrent layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Size the workspace's per-layer scratch list (the buffers inside
    /// each scratch are grown lazily by the layers themselves).
    fn ensure_scratch(&self, ws: &mut StackedScratch) {
        if ws.layers.len() != self.layers.len() {
            ws.layers = vec![LstmScratch::new(); self.layers.len()];
        }
    }

    /// Forward over a window of inputs, reusing a caller-held workspace
    /// for the gate pre-activations; produces the head output for the
    /// final step plus the tape.
    pub fn forward_ws(&self, xs: &[Mat], ws: &mut StackedScratch) -> (Mat, StackedTape) {
        assert!(!xs.is_empty());
        self.ensure_scratch(ws);
        let mut layer_tapes = Vec::with_capacity(self.layers.len());
        let mut layer_hs: Vec<Vec<Mat>> = Vec::with_capacity(self.layers.len());
        let mut cur: Vec<Mat> = xs.to_vec();
        for (layer, lws) in self.layers.iter().zip(ws.layers.iter_mut()) {
            let (hs, tape) = layer.forward_seq_ws(&cur, lws);
            layer_tapes.push(tape);
            cur = hs.clone();
            layer_hs.push(hs);
        }
        let last_h = cur.last().expect("non-empty sequence");
        let (y, head_cache) = self.head.forward(last_h);
        (
            y,
            StackedTape {
                layer_tapes,
                layer_hs,
                head_cache,
                seq_len: xs.len(),
            },
        )
    }

    /// Forward with a throwaway workspace.
    pub fn forward(&self, xs: &[Mat]) -> (Mat, StackedTape) {
        let mut ws = StackedScratch::new();
        self.forward_ws(xs, &mut ws)
    }

    /// Inference: head output at the last step, no tape. Runs the
    /// streaming step path, which shares every kernel with the tape path,
    /// so the two agree bitwise.
    pub fn infer(&self, xs: &[Mat]) -> Mat {
        assert!(!xs.is_empty());
        let mut states = self.zero_states(xs[0].rows());
        let mut ws = StackedScratch::new();
        self.ensure_scratch(&mut ws);
        for x in xs {
            self.step_states(x, &mut states, &mut ws);
        }
        self.head.infer(&states[states.len() - 1].h)
    }

    /// Advance all recurrent layers one step in place without applying
    /// the head. Windowed scorers drive this per timestep and apply the
    /// head only once at the window's end.
    pub fn step_layers(&self, x: &Mat, states: &mut [LstmState], ws: &mut StackedScratch) {
        assert_eq!(states.len(), self.layers.len());
        self.ensure_scratch(ws);
        self.step_states(x, states, ws);
    }

    /// Advance all recurrent layers one step in place (no head).
    fn step_states(&self, x: &Mat, states: &mut [LstmState], ws: &mut StackedScratch) {
        debug_assert_eq!(states.len(), self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            // Split so layer l can read layer l-1's fresh output while
            // mutating its own state — no per-layer clone of h.
            let (below, rest) = states.split_at_mut(l);
            let input = if l == 0 { x } else { &below[l - 1].h };
            layer.step_into(input, &mut rest[0], &mut ws.layers[l]);
        }
    }

    /// Stateful streaming inference: run one step, carrying states, with
    /// every intermediate in the caller-held workspace. Returns the head
    /// output by reference into the workspace's buffer.
    pub fn step_infer_ws<'w>(
        &self,
        x: &Mat,
        states: &mut [LstmState],
        ws: &'w mut StackedScratch,
    ) -> &'w Mat {
        assert_eq!(states.len(), self.layers.len());
        self.ensure_scratch(ws);
        self.step_states(x, states, ws);
        self.head.infer_into(&states[states.len() - 1].h, &mut ws.y);
        &ws.y
    }

    /// Slot-resident batched streaming inference: each row of `x`/`states`
    /// holds an independent stream (one fleet node), and only the listed
    /// `rows` carry a live event this wave. Steps those rows through every
    /// recurrent layer and the head, leaving all other rows' state and
    /// head output untouched. Per row this is bit-identical to driving a
    /// batch=1 [`StackedLstm::step_infer_ws`] stream (single-row GEMV
    /// kernels throughout) — the invariant the fleet intake's capsule
    /// replay depends on.
    pub fn step_infer_rows_ws<'w>(
        &self,
        x: &Mat,
        rows: &[usize],
        states: &mut [LstmState],
        ws: &'w mut StackedScratch,
    ) -> &'w Mat {
        assert_eq!(states.len(), self.layers.len());
        self.ensure_scratch(ws);
        for (l, layer) in self.layers.iter().enumerate() {
            let (below, rest) = states.split_at_mut(l);
            let input = if l == 0 { x } else { &below[l - 1].h };
            layer.step_rows_into(input, rows, &mut rest[0], &mut ws.layers[l]);
        }
        if ws.y.shape() != (x.rows(), self.head.output_dim()) {
            ws.y.reset(x.rows(), self.head.output_dim());
        }
        let top = &states[states.len() - 1].h;
        self.head.infer_rows_into(top, rows, &mut ws.y);
        &ws.y
    }

    /// Stateful streaming inference with a throwaway workspace.
    pub fn step_infer(&self, x: &Mat, states: &mut [LstmState]) -> Mat {
        let mut ws = StackedScratch::new();
        self.step_infer_ws(x, states, &mut ws).clone()
    }

    /// Fresh zero states for streaming inference.
    pub fn zero_states(&self, batch: usize) -> Vec<LstmState> {
        self.layers
            .iter()
            .map(|l| LstmState::zeros(batch, l.hidden_dim()))
            .collect()
    }

    /// Backward from the head-output gradient `dy` ([batch, output]).
    /// Accumulates all parameter gradients; returns gradients w.r.t. the
    /// input sequence.
    pub fn backward(&mut self, tape: &StackedTape, dy: &Mat) -> Vec<Mat> {
        let mut grads: Vec<Mat> = self
            .params()
            .iter()
            .map(|p| Mat::zeros(p.w.rows(), p.w.cols()))
            .collect();
        let dxs = self.backward_into(tape, dy, &mut grads);
        for (p, g) in self.params_mut().into_iter().zip(&grads) {
            p.g.add_assign(g);
        }
        dxs
    }

    /// Number of gradient buffers [`Self::backward_into`] expects: one per
    /// parameter, in [`Self::params`] order (3 per layer + 2 for the head).
    pub fn grad_slots(&self) -> usize {
        3 * self.layers.len() + 2
    }

    /// Backward with `&self` into an ordered gradient-buffer slice (one
    /// `Mat` per parameter, [`Self::params`] order): the data-parallel
    /// trainer's per-shard path, where workers share the model immutably.
    pub fn backward_into(&self, tape: &StackedTape, dy: &Mat, grads: &mut [Mat]) -> Vec<Mat> {
        assert_eq!(grads.len(), self.grad_slots(), "gradient buffer count");
        let nl = self.layers.len();
        let (layer_grads, head_grads) = grads.split_at_mut(3 * nl);
        let (dw_head, db_head) = head_grads.split_at_mut(1);

        // Head backward feeds the last step of the top layer.
        let dh_last =
            self.head
                .backward_into(&tape.head_cache, dy, &mut dw_head[0], &mut db_head[0]);
        let batch = dh_last.rows();

        // Gradient w.r.t. each step's hidden output of the current layer.
        let mut dhs: Vec<Mat> = (0..tape.seq_len)
            .map(|t| {
                if t + 1 == tape.seq_len {
                    dh_last.clone()
                } else {
                    Mat::zeros(batch, self.hidden_dim())
                }
            })
            .collect();

        for (li, layer) in self.layers.iter().enumerate().rev() {
            let g = &mut layer_grads[3 * li..3 * li + 3];
            let (dwx, rest) = g.split_at_mut(1);
            let (dwh, db) = rest.split_at_mut(1);
            let dxs = layer.backward_seq_into(
                &tape.layer_tapes[li],
                &dhs,
                &mut dwx[0],
                &mut dwh[0],
                &mut db[0],
            );
            dhs = dxs;
        }
        let _ = &tape.layer_hs; // kept for future per-step losses
        dhs
    }

    /// All parameters, bottom layer first, head last.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps: Vec<&mut Param> = Vec::new();
        for layer in &mut self.layers {
            ps.extend(layer.params_mut());
        }
        ps.extend(self.head.params_mut());
        ps
    }

    /// Immutable parameter view (same order as [`Self::params_mut`]).
    pub fn params(&self) -> Vec<&Param> {
        let mut ps: Vec<&Param> = Vec::new();
        for layer in &self.layers {
            ps.extend(layer.params());
        }
        ps.extend(self.head.params());
        ps
    }

    /// Zero every accumulated gradient.
    pub fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_seq(t: usize, batch: usize, dim: usize, rng: &mut Xoshiro256pp) -> Vec<Mat> {
        (0..t)
            .map(|_| Mat::from_fn(batch, dim, |_, _| rng.f32() - 0.5))
            .collect()
    }

    #[test]
    fn shapes_and_param_order() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let net = StackedLstm::new(3, 4, 2, 5, &mut rng);
        assert_eq!(net.depth(), 2);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 5);
        // 2 layers * 3 params + head 2 params.
        assert_eq!(net.params().len(), 8);
        let xs = rand_seq(6, 2, 3, &mut rng);
        let (y, tape) = net.forward(&xs);
        assert_eq!(y.shape(), (2, 5));
        assert_eq!(tape.seq_len, 6);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let net = StackedLstm::new(2, 3, 2, 2, &mut rng);
        let xs = rand_seq(5, 3, 2, &mut rng);
        let (y, _) = net.forward(&xs);
        assert_eq!(net.infer(&xs), y);
    }

    #[test]
    fn step_infer_matches_batch_infer() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let net = StackedLstm::new(2, 3, 2, 2, &mut rng);
        let xs = rand_seq(5, 1, 2, &mut rng);
        let mut states = net.zero_states(1);
        let mut last = Mat::zeros(1, 2);
        for x in &xs {
            last = net.step_infer(x, &mut states);
        }
        let batch = net.infer(&xs);
        for (a, b) in last.data().iter().zip(batch.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn step_infer_rows_bit_identical_to_sequential_streams() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let net = StackedLstm::new(3, 4, 2, 3, &mut rng);
        let slots = 5usize;
        // Independent per-slot event sequences of differing lengths, so
        // waves step a different row subset each tick.
        let seqs: Vec<Vec<Mat>> = (0..slots)
            .map(|s| rand_seq(3 + s % 3, 1, 3, &mut rng))
            .collect();
        // Batched: all slots resident as rows of one state/input matrix.
        let mut bstates = net.zero_states(slots);
        let mut bws = StackedScratch::new();
        let mut x = Mat::zeros(slots, 3);
        let mut outs: Vec<Vec<Vec<u32>>> = vec![Vec::new(); slots];
        let max_t = seqs.iter().map(|s| s.len()).max().unwrap();
        for t in 0..max_t {
            let rows: Vec<usize> = (0..slots).filter(|&s| t < seqs[s].len()).collect();
            for &s in &rows {
                x.row_mut(s).copy_from_slice(seqs[s][t].row(0));
            }
            let y = net.step_infer_rows_ws(&x, &rows, &mut bstates, &mut bws);
            for &s in &rows {
                outs[s].push(y.row(s).iter().map(|v| v.to_bits()).collect());
            }
        }
        // Sequential: each slot through its own batch=1 stream.
        for s in 0..slots {
            let mut states = net.zero_states(1);
            let mut ws = StackedScratch::new();
            for (t, xt) in seqs[s].iter().enumerate() {
                let y = net.step_infer_ws(xt, &mut states, &mut ws);
                let bits: Vec<u32> = y.row(0).iter().map(|v| v.to_bits()).collect();
                assert_eq!(outs[s][t], bits, "slot {s} step {t} diverged");
            }
        }
    }

    #[test]
    fn stacked_gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut net = StackedLstm::new(2, 3, 2, 2, &mut rng);
        let xs = rand_seq(3, 2, 2, &mut rng);

        // L = 0.5 ||y||^2 -> dy = y.
        let loss = |net: &StackedLstm, xs: &[Mat]| -> f64 { net.infer(xs).sq_norm() * 0.5 };
        let (y, tape) = net.forward(&xs);
        let dxs = net.backward(&tape, &y);

        let eps = 1e-3f32;
        // Sample several weights across all parameter tensors.
        let n_params = net.params().len();
        for pi in 0..n_params {
            let len = net.params()[pi].len();
            for s in 0..3usize {
                let idx = (s * 17 + pi * 7) % len;
                let orig = net.params()[pi].w.data()[idx];
                net.params_mut()[pi].w.data_mut()[idx] = orig + eps;
                let lp = loss(&net, &xs);
                net.params_mut()[pi].w.data_mut()[idx] = orig - eps;
                let lm = loss(&net, &xs);
                net.params_mut()[pi].w.data_mut()[idx] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let ana = net.params()[pi].g.data()[idx];
                assert!(
                    (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                    "param {pi} idx {idx}: numeric {num} vs analytic {ana}"
                );
            }
        }
        // Input gradient check.
        let mut xs2 = xs.clone();
        for t in 0..xs2.len() {
            let orig = xs2[t].data()[0];
            xs2[t].data_mut()[0] = orig + eps;
            let lp = loss(&net, &xs2);
            xs2[t].data_mut()[0] = orig - eps;
            let lm = loss(&net, &xs2);
            xs2[t].data_mut()[0] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = dxs[t].data()[0];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                "dx[{t}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn zero_grads_resets_everything() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut net = StackedLstm::new(2, 3, 1, 2, &mut rng);
        let xs = rand_seq(2, 1, 2, &mut rng);
        let (y, tape) = net.forward(&xs);
        net.backward(&tape, &y);
        assert!(net.params().iter().any(|p| p.g.sq_norm() > 0.0));
        net.zero_grads();
        assert!(net.params().iter().all(|p| p.g.sq_norm() == 0.0));
    }
}
