//! A single LSTM layer with full backpropagation through time.
//!
//! Follows the classic Hochreiter & Schmidhuber formulation the paper cites:
//! input, forget, and output sigmoid gates plus a tanh candidate, with the
//! cell state carrying long-term memory. Gate pre-activations are computed
//! as one fused `[B, 4H]` GEMM per timestep; columns are laid out in
//! `[i | f | g | o]` order.

use crate::act::{dsigmoid_from_out, dtanh_from_out};
use crate::mat::Mat;
use crate::param::Param;
use desh_util::Xoshiro256pp;

/// One LSTM layer.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    /// Input-to-gates weights, shape [input, 4*hidden].
    pub wx: Param,
    /// Hidden-to-gates (recurrent) weights, shape [hidden, 4*hidden].
    pub wh: Param,
    /// Gate bias, shape [1, 4*hidden]. Forget-gate slice initialised to 1.0
    /// (the standard trick so early training does not forget everything).
    pub b: Param,
    hidden: usize,
    input: usize,
}

/// Per-timestep intermediate values needed by the backward pass.
#[derive(Debug)]
struct StepCache {
    x: Mat,
    h_prev: Mat,
    c_prev: Mat,
    i: Mat,
    f: Mat,
    g: Mat,
    o: Mat,
    c: Mat,
}

/// Tape recorded by a forward pass over a sequence.
#[derive(Debug)]
pub struct LstmTape {
    steps: Vec<StepCache>,
}

impl LstmTape {
    /// Number of recorded timesteps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Recurrent state (h, c) carried between timesteps.
#[derive(Debug, Clone)]
pub struct LstmState {
    /// Hidden output, shape [batch, hidden].
    pub h: Mat,
    /// Cell state, shape [batch, hidden].
    pub c: Mat,
}

impl LstmState {
    /// Zero state for a batch.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        Self {
            h: Mat::zeros(batch, hidden),
            c: Mat::zeros(batch, hidden),
        }
    }

    /// Reset to zeros in place, keeping the allocations.
    pub fn clear(&mut self) {
        self.h.clear();
        self.c.clear();
    }
}

/// Reusable scratch for one LSTM layer: the fused `[B, 4H]` gate
/// pre-activation buffer. Holding one of these across timesteps removes
/// every per-step allocation from the inference path; the training path
/// reuses it for the pre-activations and only allocates the tape mats that
/// BPTT genuinely has to keep.
#[derive(Debug, Clone, Default)]
pub struct LstmScratch {
    pre: Mat,
}

impl LstmScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LstmLayer {
    /// New layer with Xavier weights and forget-bias 1.
    pub fn new(input: usize, hidden: usize, name: &str, rng: &mut Xoshiro256pp) -> Self {
        let mut b = Param::zeros(&format!("{name}.b"), 1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.w.data_mut()[c] = 1.0;
        }
        Self {
            wx: Param::xavier(&format!("{name}.wx"), input, 4 * hidden, rng),
            wh: Param::xavier(&format!("{name}.wh"), hidden, 4 * hidden, rng),
            b,
            hidden,
            input,
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Fused gate pre-activations into the scratch buffer:
    /// `pre = x @ Wx + h_prev @ Wh + b`, all in place. Both the tape-
    /// recording forward pass and the zero-allocation inference step go
    /// through this single routine, so their outputs are bit-identical.
    fn preactivations(&self, x: &Mat, h_prev: &Mat, ws: &mut LstmScratch) {
        debug_assert_eq!(x.cols(), self.input);
        debug_assert_eq!(h_prev.cols(), self.hidden);
        x.matmul_into(&self.wx.w, &mut ws.pre);
        h_prev.matmul_acc(&self.wh.w, &mut ws.pre);
        ws.pre.add_row_broadcast(&self.b.w);
    }

    /// One timestep without recording a tape (inference). Allocation-free
    /// apart from lazily sizing the scratch on first use: the gate
    /// nonlinearities and the cell update are applied directly to the
    /// state matrices.
    pub fn step_into(&self, x: &Mat, state: &mut LstmState, ws: &mut LstmScratch) {
        let batch = x.rows();
        let hsz = self.hidden;
        self.preactivations(x, &state.h, ws);
        debug_assert_eq!(hsz, state.c.cols());
        for r in 0..batch {
            // Fused gate kernel: sigmoid/tanh over all four gate blocks
            // plus the cell/hidden update in one dispatched pass.
            crate::simd::lstm_gates_step(ws.pre.row(r), state.c.row_mut(r), state.h.row_mut(r));
        }
    }

    /// Step only the listed rows of a slot-resident batch. Each row of
    /// `x`/`state` holds an independent stream (one fleet node), and only
    /// `rows` carry a live event this wave; the other rows' state is left
    /// untouched. The wave's pre-activations go through
    /// [`Mat::matmul_rows_into`]/[`Mat::matmul_rows_acc`], which fuse
    /// dense rows so one sweep of the weight matrices feeds the whole
    /// wave — but fold every output element in the identical order the
    /// batch=1 kernels use, so each stream's state stays bit-identical
    /// to its sequential history (the property the capsule-replay tests
    /// pin down). `rows` must be distinct — they are independent streams,
    /// which is also what makes hoisting the GEMVs ahead of the gate
    /// updates legal (no row reads another row's state).
    pub fn step_rows_into(
        &self,
        x: &Mat,
        rows: &[usize],
        state: &mut LstmState,
        ws: &mut LstmScratch,
    ) {
        debug_assert_eq!(x.cols(), self.input);
        debug_assert_eq!(state.h.cols(), self.hidden);
        debug_assert_eq!(state.h.rows(), x.rows());
        if ws.pre.shape() != (x.rows(), 4 * self.hidden) {
            ws.pre.reset(x.rows(), 4 * self.hidden);
        }
        x.matmul_rows_into(rows, &self.wx.w, &mut ws.pre);
        state.h.matmul_rows_acc(rows, &self.wh.w, &mut ws.pre);
        for &r in rows {
            ws.pre.add_bias_row(r, &self.b.w);
            crate::simd::lstm_gates_step(ws.pre.row(r), state.c.row_mut(r), state.h.row_mut(r));
        }
    }

    /// One timestep without a caller-provided scratch (convenience; pays
    /// one buffer allocation). Hot loops should hold an [`LstmScratch`]
    /// and call [`LstmLayer::step_into`].
    pub fn step_infer(&self, x: &Mat, state: &mut LstmState) {
        let mut ws = LstmScratch::new();
        self.step_into(x, state, &mut ws);
    }

    /// Shared gate math for the training path. Returns
    /// (i, f, g, o, c_new, h_new); pre-activations go through `ws`.
    #[allow(clippy::type_complexity)]
    fn gates_with(
        &self,
        x: &Mat,
        h_prev: &Mat,
        c_prev: &Mat,
        ws: &mut LstmScratch,
    ) -> (Mat, Mat, Mat, Mat, Mat, Mat) {
        let batch = x.rows();
        let hsz = self.hidden;
        self.preactivations(x, h_prev, ws);

        let mut i = Mat::zeros(batch, hsz);
        let mut f = Mat::zeros(batch, hsz);
        let mut g = Mat::zeros(batch, hsz);
        let mut o = Mat::zeros(batch, hsz);
        let mut c = Mat::zeros(batch, hsz);
        let mut h = Mat::zeros(batch, hsz);
        debug_assert_eq!(hsz, c_prev.cols());
        for r in 0..batch {
            // Same fused kernel math as `step_into`, so the tape path and
            // the scratch path agree bitwise under every backend.
            crate::simd::lstm_gates_train(
                ws.pre.row(r),
                c_prev.row(r),
                i.row_mut(r),
                f.row_mut(r),
                g.row_mut(r),
                o.row_mut(r),
                c.row_mut(r),
                h.row_mut(r),
            );
        }
        (i, f, g, o, c, h)
    }

    /// Forward over a full sequence starting from a zero state, reusing a
    /// caller-held scratch for the gate pre-activations.
    /// Returns the per-step hidden outputs and the tape for backprop.
    pub fn forward_seq_ws(&self, xs: &[Mat], ws: &mut LstmScratch) -> (Vec<Mat>, LstmTape) {
        assert!(!xs.is_empty());
        let batch = xs[0].rows();
        let mut state = LstmState::zeros(batch, self.hidden);
        let mut hs = Vec::with_capacity(xs.len());
        let mut steps = Vec::with_capacity(xs.len());
        for x in xs {
            let (i, f, g, o, c, h) = self.gates_with(x, &state.h, &state.c, ws);
            steps.push(StepCache {
                x: x.clone(),
                h_prev: state.h.clone(),
                c_prev: state.c.clone(),
                i,
                f,
                g,
                o,
                c: c.clone(),
            });
            state.c = c;
            state.h = h.clone();
            hs.push(h);
        }
        (hs, LstmTape { steps })
    }

    /// Forward over a full sequence with a throwaway scratch.
    pub fn forward_seq(&self, xs: &[Mat]) -> (Vec<Mat>, LstmTape) {
        let mut ws = LstmScratch::new();
        self.forward_seq_ws(xs, &mut ws)
    }

    /// Inference over a sequence: only the final hidden output.
    pub fn infer_seq(&self, xs: &[Mat]) -> Mat {
        assert!(!xs.is_empty());
        let mut state = LstmState::zeros(xs[0].rows(), self.hidden);
        let mut ws = LstmScratch::new();
        for x in xs {
            self.step_into(x, &mut state, &mut ws);
        }
        state.h
    }

    /// Backpropagation through time. `dhs[t]` is the loss gradient w.r.t.
    /// the step-`t` hidden output (zero matrices for steps without loss).
    /// Accumulates parameter gradients and returns `dxs` per step.
    pub fn backward_seq(&mut self, tape: &LstmTape, dhs: &[Mat]) -> Vec<Mat> {
        Self::backward_seq_parts(
            self.hidden,
            &self.wx.w,
            &self.wh.w,
            &mut self.wx.g,
            &mut self.wh.g,
            &mut self.b.g,
            tape,
            dhs,
        )
    }

    /// BPTT into caller-held gradient buffers (`&self`): the data-parallel
    /// trainer's per-shard path. Buffer shapes must match `wx`/`wh`/`b`.
    pub fn backward_seq_into(
        &self,
        tape: &LstmTape,
        dhs: &[Mat],
        dwx: &mut Mat,
        dwh: &mut Mat,
        db: &mut Mat,
    ) -> Vec<Mat> {
        Self::backward_seq_parts(self.hidden, &self.wx.w, &self.wh.w, dwx, dwh, db, tape, dhs)
    }

    #[allow(clippy::too_many_arguments)]
    fn backward_seq_parts(
        hsz: usize,
        wx: &Mat,
        wh: &Mat,
        dwx: &mut Mat,
        dwh: &mut Mat,
        db: &mut Mat,
        tape: &LstmTape,
        dhs: &[Mat],
    ) -> Vec<Mat> {
        assert_eq!(tape.steps.len(), dhs.len());
        let t_len = tape.steps.len();
        let batch = tape.steps[0].x.rows();

        let mut dh_next = Mat::zeros(batch, hsz);
        let mut dc_next = Mat::zeros(batch, hsz);
        let mut dxs = vec![Mat::zeros(0, 0); t_len];

        for t in (0..t_len).rev() {
            let s = &tape.steps[t];
            let mut dh = dhs[t].clone();
            dh.add_assign(&dh_next);

            // dP holds gate pre-activation gradients [B, 4H] in i|f|g|o order.
            let mut dp = Mat::zeros(batch, 4 * hsz);
            let mut dc_prev = Mat::zeros(batch, hsz);
            for r in 0..batch {
                for k in 0..hsz {
                    let c = s.c.row(r)[k];
                    let tc = c.tanh();
                    let o = s.o.row(r)[k];
                    let i = s.i.row(r)[k];
                    let f = s.f.row(r)[k];
                    let g = s.g.row(r)[k];
                    let dh_v = dh.row(r)[k];

                    let do_v = dh_v * tc;
                    let dc = dc_next.row(r)[k] + dh_v * o * dtanh_from_out(tc);

                    let di = dc * g;
                    let df = dc * s.c_prev.row(r)[k];
                    let dg = dc * i;
                    dc_prev.row_mut(r)[k] = dc * f;

                    let row = dp.row_mut(r);
                    row[k] = di * dsigmoid_from_out(i);
                    row[hsz + k] = df * dsigmoid_from_out(f);
                    row[2 * hsz + k] = dg * dtanh_from_out(g);
                    row[3 * hsz + k] = do_v * dsigmoid_from_out(o);
                }
            }

            dwx.add_assign(&s.x.t_matmul(&dp));
            dwh.add_assign(&s.h_prev.t_matmul(&dp));
            db.add_assign(&dp.col_sums());

            dxs[t] = dp.matmul_t(wx);
            dh_next = dp.matmul_t(wh);
            dc_next = dc_prev;
        }
        dxs
    }

    /// Parameters in deterministic order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Immutable parameter view.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar loss used for gradient checking: L = 0.5 * sum over all steps
    /// of ||h_t||^2, so dL/dh_t = h_t.
    fn loss_of(layer: &LstmLayer, xs: &[Mat]) -> f64 {
        let (hs, _) = layer.forward_seq(xs);
        hs.iter().map(|h| h.sq_norm()).sum::<f64>() * 0.5
    }

    fn rand_mat(rows: usize, cols: usize, rng: &mut Xoshiro256pp) -> Mat {
        Mat::from_fn(rows, cols, |_, _| rng.f32() - 0.5)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let layer = LstmLayer::new(3, 5, "l", &mut rng);
        let xs: Vec<Mat> = (0..4).map(|_| rand_mat(2, 3, &mut rng)).collect();
        let (hs, tape) = layer.forward_seq(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(tape.len(), 4);
        assert!(hs.iter().all(|h| h.shape() == (2, 5)));
    }

    #[test]
    fn hidden_values_bounded() {
        // h = o * tanh(c) with o in (0,1) and tanh in (-1,1) -> |h| < 1.
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let layer = LstmLayer::new(4, 6, "l", &mut rng);
        let xs: Vec<Mat> = (0..10).map(|_| rand_mat(3, 4, &mut rng)).collect();
        let (hs, _) = layer.forward_seq(&xs);
        for h in hs {
            assert!(h.data().iter().all(|x| x.abs() < 1.0));
        }
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let layer = LstmLayer::new(2, 3, "l", &mut rng);
        let b = layer.b.w.data();
        assert!(b[0..3].iter().all(|&x| x == 0.0)); // input gate
        assert!(b[3..6].iter().all(|&x| x == 1.0)); // forget gate
        assert!(b[6..12].iter().all(|&x| x == 0.0)); // candidate + output
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let layer = LstmLayer::new(3, 4, "l", &mut rng);
        let xs: Vec<Mat> = (0..5).map(|_| rand_mat(2, 3, &mut rng)).collect();
        let (hs, _) = layer.forward_seq(&xs);
        let last = layer.infer_seq(&xs);
        assert_eq!(last, hs[4]);
    }

    #[test]
    fn bptt_weight_gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut layer = LstmLayer::new(2, 3, "l", &mut rng);
        let xs: Vec<Mat> = (0..4).map(|_| rand_mat(2, 2, &mut rng)).collect();

        let (hs, tape) = layer.forward_seq(&xs);
        let dhs: Vec<Mat> = hs.clone();
        layer.backward_seq(&tape, &dhs);

        let eps = 1e-3f32;
        // Spot-check a sample of weights in each parameter tensor.
        for (pname, pick) in [("wx", 5usize), ("wh", 7), ("b", 3)] {
            for s in 0..pick {
                let (len, ana) = {
                    let p = match pname {
                        "wx" => &layer.wx,
                        "wh" => &layer.wh,
                        _ => &layer.b,
                    };
                    (p.len(), p.g.data().to_vec())
                };
                let idx = (s * 31) % len;
                fn get<'a>(layer: &'a mut LstmLayer, pname: &str) -> &'a mut Param {
                    match pname {
                        "wx" => &mut layer.wx,
                        "wh" => &mut layer.wh,
                        _ => &mut layer.b,
                    }
                }
                let orig = get(&mut layer, pname).w.data()[idx];
                get(&mut layer, pname).w.data_mut()[idx] = orig + eps;
                let lp = loss_of(&layer, &xs);
                get(&mut layer, pname).w.data_mut()[idx] = orig - eps;
                let lm = loss_of(&layer, &xs);
                get(&mut layer, pname).w.data_mut()[idx] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (num - ana[idx]).abs() < 3e-2 * (1.0 + num.abs()),
                    "{pname}[{idx}]: numeric {num} vs analytic {}",
                    ana[idx]
                );
            }
        }
    }

    #[test]
    fn bptt_input_gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut layer = LstmLayer::new(2, 3, "l", &mut rng);
        let mut xs: Vec<Mat> = (0..3).map(|_| rand_mat(1, 2, &mut rng)).collect();

        let (hs, tape) = layer.forward_seq(&xs);
        let dxs = layer.backward_seq(&tape, &hs);

        let eps = 1e-3f32;
        for t in 0..3 {
            for idx in 0..2 {
                let orig = xs[t].data()[idx];
                xs[t].data_mut()[idx] = orig + eps;
                let lp = loss_of(&layer, &xs);
                xs[t].data_mut()[idx] = orig - eps;
                let lm = loss_of(&layer, &xs);
                xs[t].data_mut()[idx] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let ana = dxs[t].data()[idx];
                assert!(
                    (num - ana).abs() < 2e-2 * (1.0 + num.abs()),
                    "dx[{t}][{idx}]: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn memory_cell_retains_early_signal() {
        // Feed a distinctive first input then zeros; the final hidden state
        // must still differ from the all-zeros run, i.e. the cell remembers.
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let layer = LstmLayer::new(2, 4, "l", &mut rng);
        let mut seq_signal: Vec<Mat> = vec![Mat::full(1, 2, 1.0)];
        let mut seq_zero: Vec<Mat> = vec![Mat::zeros(1, 2)];
        for _ in 0..8 {
            seq_signal.push(Mat::zeros(1, 2));
            seq_zero.push(Mat::zeros(1, 2));
        }
        let h_signal = layer.infer_seq(&seq_signal);
        let h_zero = layer.infer_seq(&seq_zero);
        let diff: f32 = h_signal
            .data()
            .iter()
            .zip(h_zero.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "cell forgot the early signal entirely: {diff}");
    }
}
