//! Determinism guarantees of the data-parallel trainer.
//!
//! The contract under test: training numerics depend only on the fixed
//! shard count, never on the executing thread count — a same-seed run at
//! 1 worker and at 4 workers must produce **bit-identical** weights and
//! predictions, and repeat runs must be bit-identical too. The 1-worker
//! parallel run must also track the pre-sharding sequential loop to
//! within FP-summation-order tolerance.
//!
//! The thread override is process-global, so every test serialises on
//! one mutex and restores the override before releasing it.

use desh_nn::{
    RecordingObserver, RmsProp, Sgd, SgnsConfig, SkipGram, TokenLstm, TrainConfig, VectorLstm,
};
use desh_util::Xoshiro256pp;
use std::sync::Mutex;

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Run `f` with the shim pinned to `workers` threads, restoring the
/// override afterwards even on panic-free early returns.
fn with_workers<R>(
    guard: &std::sync::MutexGuard<'_, ()>,
    workers: usize,
    f: impl FnOnce() -> R,
) -> R {
    let _ = guard;
    rayon::set_thread_override(Some(workers));
    let out = f();
    rayon::set_thread_override(None);
    out
}

fn cyclic_seqs(vocab: u32, len: usize, n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|off| (0..len).map(|i| ((i + off) as u32) % vocab).collect())
        .collect()
}

fn countdown_seqs(n: usize, len: usize) -> Vec<Vec<Vec<f32>>> {
    (0..n)
        .map(|j| {
            (0..len)
                .map(|i| {
                    let t = (len - 1 - i) as f32 / len as f32;
                    let p = (i as f32 + j as f32 * 0.1) / len as f32;
                    vec![t, p]
                })
                .collect()
        })
        .collect()
}

fn token_cfg() -> TrainConfig {
    TrainConfig {
        history: 4,
        batch: 16,
        epochs: 8,
        clip: 5.0,
    }
}

fn train_token(workers: usize, guard: &std::sync::MutexGuard<'_, ()>) -> TokenLstm {
    with_workers(guard, workers, || {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let seqs = cyclic_seqs(6, 40, 4);
        let mut m = TokenLstm::new(6, 8, 16, 2, &mut rng);
        let mut opt = Sgd::with_momentum(0.3, 0.9);
        m.train(&seqs, &token_cfg(), &mut opt, &mut rng);
        m
    })
}

fn weights_of(m: &TokenLstm) -> Vec<Vec<f32>> {
    m.params().iter().map(|p| p.w.data().to_vec()).collect()
}

fn max_abs_diff(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    a.iter()
        .zip(b)
        .flat_map(|(x, y)| x.iter().zip(y).map(|(u, v)| (u - v).abs()))
        .fold(0.0f32, f32::max)
}

#[test]
fn token_training_is_bit_identical_across_worker_counts() {
    let guard = OVERRIDE_LOCK.lock().unwrap();
    let one = train_token(1, &guard);
    let four = train_token(4, &guard);
    // Bit-identical weights — which trivially satisfies the 1e-6 bound.
    for (a, b) in weights_of(&one).iter().zip(weights_of(&four).iter()) {
        let bits_a: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
        let bits_b: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "weights diverged between 1 and 4 workers");
    }
    assert!(max_abs_diff(&weights_of(&one), &weights_of(&four)) <= 1e-6);
    // Identical predictions follow from identical weights, but assert the
    // user-visible surface directly too.
    assert_eq!(
        one.predict_kstep(&[0, 1, 2, 3], 3),
        four.predict_kstep(&[0, 1, 2, 3], 3)
    );
    let pa = one.predict_probs(&[1, 2, 3, 4]);
    let pb = four.predict_probs(&[1, 2, 3, 4]);
    assert_eq!(pa, pb);
}

#[test]
fn token_repeat_runs_are_bit_identical() {
    let guard = OVERRIDE_LOCK.lock().unwrap();
    let a = train_token(4, &guard);
    let b = train_token(4, &guard);
    for (x, y) in weights_of(&a).iter().zip(weights_of(&b).iter()) {
        let bits_x: Vec<u32> = x.iter().map(|v| v.to_bits()).collect();
        let bits_y: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_x, bits_y, "same-seed repeat runs diverged");
    }
}

#[test]
fn token_parallel_tracks_sequential_reference() {
    let guard = OVERRIDE_LOCK.lock().unwrap();
    let seqs = cyclic_seqs(6, 40, 4);
    let cfg = TrainConfig {
        history: 4,
        batch: 16,
        epochs: 3,
        clip: 5.0,
    };
    let run = |sequential: bool| {
        with_workers(&guard, 1, || {
            let mut rng = Xoshiro256pp::seed_from_u64(42);
            let mut m = TokenLstm::new(6, 8, 16, 2, &mut rng);
            let mut opt = Sgd::with_momentum(0.3, 0.9);
            let mut obs = RecordingObserver::default();
            let losses = if sequential {
                m.train_sequential(&seqs, &cfg, &mut opt, &mut rng, &mut obs)
            } else {
                m.train(&seqs, &cfg, &mut opt, &mut rng)
            };
            (weights_of(&m), losses)
        })
    };
    let (w_seq, l_seq) = run(true);
    let (w_par, l_par) = run(false);
    // Only FP summation order differs (shard-local partial sums + the
    // tree), so the runs drift but stay within a tight envelope over a
    // few epochs.
    let drift = max_abs_diff(&w_seq, &w_par);
    assert!(
        drift < 1e-3,
        "1-worker parallel drifted {drift} from sequential"
    );
    for (a, b) in l_seq.iter().zip(&l_par) {
        assert!((a - b).abs() < 1e-3, "epoch losses diverged: {a} vs {b}");
    }
}

#[test]
fn vector_training_is_bit_identical_across_worker_counts() {
    let guard = OVERRIDE_LOCK.lock().unwrap();
    let run = |workers: usize| {
        with_workers(&guard, workers, || {
            let mut rng = Xoshiro256pp::seed_from_u64(7);
            let seqs = countdown_seqs(8, 10);
            let mut m = VectorLstm::new(2, 16, 2, &mut rng);
            let cfg = TrainConfig {
                history: 5,
                batch: 16,
                epochs: 10,
                clip: 5.0,
            };
            let mut opt = RmsProp::new(0.005);
            let losses = m.train(&seqs, &cfg, &mut opt, &mut rng);
            let scores = m.score_sequence(&seqs[0], 5);
            (losses, scores)
        })
    };
    let (l1, s1) = run(1);
    let (l4, s4) = run(4);
    assert_eq!(
        l1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        l4.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(
        s1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        s4.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn sgns_training_is_bit_identical_across_worker_counts() {
    let guard = OVERRIDE_LOCK.lock().unwrap();
    let run = |workers: usize| {
        with_workers(&guard, workers, || {
            let mut rng = Xoshiro256pp::seed_from_u64(11);
            let seqs: Vec<Vec<u32>> = (0..20)
                .map(|i| {
                    if i % 2 == 0 {
                        vec![0, 1, 0, 1, 0, 1]
                    } else {
                        vec![2, 3, 2, 3, 2, 3]
                    }
                })
                .collect();
            let cfg = SgnsConfig {
                dim: 8,
                epochs: 4,
                ..Default::default()
            };
            let mut sg = SkipGram::new(4, &seqs, cfg, &mut rng);
            let losses = sg.train(&seqs, &mut rng);
            (losses, sg.into_table())
        })
    };
    let (l1, t1) = run(1);
    let (l4, t4) = run(4);
    assert_eq!(
        l1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        l4.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    assert_eq!(
        t1.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        t4.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
}

#[test]
fn observer_sees_shard_stats_and_reduce_latency() {
    use desh_nn::{ShardStats, TrainObserver};
    use std::time::Duration;

    #[derive(Default)]
    struct ShardProbe {
        epochs: usize,
        shard_calls: usize,
        shards_seen: usize,
        windows_total: usize,
        reduces: usize,
    }
    impl TrainObserver for ShardProbe {
        fn on_epoch(&mut self, _e: usize, _l: f64, _d: Duration) {
            self.epochs += 1;
        }
        fn on_shards(&mut self, _e: usize, stats: &[ShardStats]) {
            self.shard_calls += 1;
            self.shards_seen = stats.len();
            self.windows_total = stats.iter().map(|s| s.windows).sum();
            for s in stats {
                let _ = s.throughput();
            }
        }
        fn on_grad_reduce(&mut self, _elapsed: Duration) {
            self.reduces += 1;
        }
    }

    let guard = OVERRIDE_LOCK.lock().unwrap();
    with_workers(&guard, 2, || {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let seqs = cyclic_seqs(5, 24, 3);
        let mut m = TokenLstm::new(5, 4, 8, 1, &mut rng);
        let cfg = TrainConfig {
            history: 4,
            batch: 8,
            epochs: 2,
            clip: 5.0,
        };
        let mut opt = Sgd::new(0.1);
        let mut probe = ShardProbe::default();
        m.train_observed(&seqs, &cfg, &mut opt, &mut rng, &mut probe);
        assert_eq!(probe.epochs, 2);
        assert_eq!(probe.shard_calls, 2);
        assert_eq!(probe.shards_seen, desh_nn::shard_count());
        // Every window is attributed to exactly one shard each epoch:
        // 3 sequences of 24 tokens with history 4 -> 60 windows.
        assert_eq!(probe.windows_total, 60);
        // One reduce per minibatch: ceil(60 / 8) = 8 per epoch.
        assert_eq!(probe.reduces, 16);
    });
}
