//! Property-based tests for the neural substrate.

use desh_nn::loss::{mse, mse_vec, softmax, softmax_xent, top_k};
use desh_nn::simd::set_backend;
use desh_nn::{Backend, Mat, QuantMat, TokenLstm, VectorLstm};
use desh_util::Xoshiro256pp;
use proptest::prelude::*;
use std::sync::Mutex;

/// The kernel backend is process-global; tests that pin it must not
/// interleave with each other (the test binary is multi-threaded).
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| x)
}

/// Reference triple-loop product accumulated in f64 — the oracle the
/// packed/GEMV/sparse dispatch in `Mat::matmul` must agree with.
fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows());
    Mat::from_fn(a.rows(), b.cols(), |i, j| {
        let mut s = 0.0f64;
        for kk in 0..a.cols() {
            s += a.row(i)[kk] as f64 * b.row(kk)[j] as f64;
        }
        s as f32
    })
}

fn random_mat(rows: usize, cols: usize, rng: &mut Xoshiro256pp) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.f32() * 2.0 - 1.0)
}

/// Tolerance for comparing an f32 kernel (whatever its summation order)
/// against the f64 oracle over a k-long inner product of values in [-1,1].
fn gemm_tol(k: usize) -> f32 {
    1e-5 * (k as f32).sqrt() + 1e-6
}

fn assert_mats_close(got: &Mat, want: &Mat, tol: f32) -> proptest::TestCaseResult {
    prop_assert_eq!(got.shape(), want.shape());
    for (g, w) in got.data().iter().zip(want.data()) {
        prop_assert!((g - w).abs() <= tol, "got {g} want {w} (tol {tol})");
    }
    Ok(())
}

proptest! {
    #[test]
    fn matmul_matches_naive_triple_loop(
        m in 1usize..40,
        k in 1usize..96,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        // Shapes straddle both dispatch thresholds: small products take the
        // plain ikj loop, large ones the cache-blocked packed kernel.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        assert_mats_close(&a.matmul(&b), &naive_matmul(&a, &b), gemm_tol(k))?;
    }

    #[test]
    fn matmul_degenerate_vectors_match_naive(
        k in 1usize..300,
        n in 1usize..48,
        seed in any::<u64>(),
    ) {
        // 1×k @ k×n exercises the dedicated GEMV path; m×k @ k×1 the
        // per-row dot path; 1×k @ k×1 both degeneracies at once.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let row = random_mat(1, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        assert_mats_close(&row.matmul(&b), &naive_matmul(&row, &b), gemm_tol(k))?;
        let a = random_mat(n, k, &mut rng);
        let col = random_mat(k, 1, &mut rng);
        assert_mats_close(&a.matmul(&col), &naive_matmul(&a, &col), gemm_tol(k))?;
        assert_mats_close(&row.matmul(&col), &naive_matmul(&row, &col), gemm_tol(k))?;
    }

    #[test]
    fn matmul_sparse_rows_match_naive(
        m in 1usize..24,
        k in 8usize..128,
        n in 1usize..32,
        seed in any::<u64>(),
    ) {
        // One-hot rows (phase-2 style inputs) route through the
        // zero-skipping axpy kernel; the result must still be exact.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let a = Mat::from_fn(m, k, |_, c| {
            if c == rng.below(k as u64) as usize { 1.0 } else { 0.0 }
        });
        let b = random_mat(k, n, &mut rng);
        assert_mats_close(&a.matmul(&b), &naive_matmul(&a, &b), gemm_tol(k))?;
    }

    #[test]
    fn matmul_into_and_acc_match_matmul(
        m in 1usize..24,
        k in 1usize..64,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let want = a.matmul(&b);
        let mut out = Mat::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(out.data(), want.data());
        // Accumulating on top of an existing value adds exactly one product.
        let mut acc = random_mat(m, n, &mut rng);
        let base = acc.clone();
        a.matmul_acc(&b, &mut acc);
        for i in 0..m * n {
            let diff = acc.data()[i] - base.data()[i];
            prop_assert!((diff - want.data()[i]).abs() <= gemm_tol(k));
        }
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..5,
        cols in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let logits = Mat::from_fn(rows, cols, |_, _| rng.f32() * 20.0 - 10.0);
        let p = softmax(&logits);
        for r in 0..rows {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn xent_loss_is_nonnegative_and_grad_rows_sum_to_zero(
        rows in 1usize..5,
        cols in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let logits = Mat::from_fn(rows, cols, |_, _| rng.f32() * 8.0 - 4.0);
        let targets: Vec<u32> = (0..rows).map(|_| rng.below(cols as u64) as u32).collect();
        let (loss, grad) = softmax_xent(&logits, &targets);
        prop_assert!(loss >= 0.0);
        // Each gradient row sums to ~0 (softmax minus one-hot).
        for r in 0..rows {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn mse_is_zero_iff_equal(xs in proptest::collection::vec(finite_f32(), 1..32)) {
        let a = Mat::from_vec(1, xs.len(), xs.clone());
        let (zero, grad) = mse(&a, &a);
        prop_assert_eq!(zero, 0.0);
        prop_assert!(grad.data().iter().all(|&g| g == 0.0));
        prop_assert_eq!(mse_vec(&xs, &xs), 0.0);
    }

    #[test]
    fn mse_is_symmetric(
        pairs in proptest::collection::vec((finite_f32(), finite_f32()), 1..16),
    ) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        prop_assert!((mse_vec(&xs, &ys) - mse_vec(&ys, &xs)).abs() < 1e-9);
    }

    #[test]
    fn top_k_is_sorted_and_bounded(
        row in proptest::collection::vec(finite_f32(), 1..20),
        k in 1usize..25,
    ) {
        let top = top_k(&row, k);
        prop_assert_eq!(top.len(), k.min(row.len()));
        for w in top.windows(2) {
            prop_assert!(row[w[0] as usize] >= row[w[1] as usize]);
        }
    }

    #[test]
    fn token_lstm_checkpoint_round_trips_any_shape(
        vocab in 2usize..12,
        embed in 1usize..8,
        hidden in 1usize..12,
        layers in 1usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let m = TokenLstm::new(vocab, embed, hidden, layers, &mut rng);
        let m2 = TokenLstm::from_bytes(m.to_bytes()).unwrap();
        let ctx: Vec<u32> = (0..4).map(|i| (i % vocab) as u32).collect();
        prop_assert_eq!(m.predict_probs(&ctx), m2.predict_probs(&ctx));
    }

    #[test]
    fn vector_lstm_checkpoint_round_trips_any_shape(
        dim in 1usize..8,
        hidden in 1usize..12,
        layers in 1usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let m = VectorLstm::new(dim, hidden, layers, &mut rng);
        let m2 = VectorLstm::from_bytes(m.to_bytes()).unwrap();
        let sample: Vec<f32> = (0..dim).map(|i| i as f32 * 0.1).collect();
        let w: Vec<&[f32]> = vec![&sample];
        prop_assert_eq!(m.predict_next(&w, 5), m2.predict_next(&w, 5));
    }

    #[test]
    fn simd_and_scalar_gemv_both_match_f64_oracle(
        k in 1usize..200,
        n in 1usize..140,
        seed in any::<u64>(),
    ) {
        // The GEMV dispatch must agree with the f64 oracle under BOTH
        // backends — including n not a multiple of the 8/16/32/64-column
        // block tiers, where the tail paths run. Pinned under a lock
        // because the backend is process-global.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let x = random_mat(1, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let want = naive_matmul(&x, &b);
        let guard = BACKEND_LOCK.lock().unwrap();
        let native = desh_nn::kernel_backend();
        set_backend(Backend::Scalar);
        let got_scalar = x.matmul(&b);
        let got_scalar2 = x.matmul(&b);
        set_backend(native);
        let got_native = x.matmul(&b);
        drop(guard);
        // The scalar fallback is deterministic: same inputs, same bits.
        prop_assert_eq!(got_scalar.data(), got_scalar2.data());
        assert_mats_close(&got_scalar, &want, gemm_tol(k))?;
        assert_mats_close(&got_native, &want, gemm_tol(k))?;
    }

    #[test]
    fn simd_and_scalar_gemm_agree_on_ragged_shapes(
        m in 1usize..20,
        k in 1usize..80,
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        // Full GEMM through the packed microkernel path: scalar and SIMD
        // backends must stay within f32-reassociation distance of each
        // other on shapes with ragged MR/NR tails.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let guard = BACKEND_LOCK.lock().unwrap();
        let native = desh_nn::kernel_backend();
        set_backend(Backend::Scalar);
        let got_scalar = a.matmul(&b);
        set_backend(native);
        let got_native = a.matmul(&b);
        drop(guard);
        assert_mats_close(&got_native, &got_scalar, 2.0 * gemm_tol(k))?;
    }

    #[test]
    fn matmul_t_matches_naive_transpose_product(
        m in 1usize..24,
        k in 1usize..96,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        // `A @ Bᵀ` with B stored row-major [n,k]: the transpose-packed
        // kernel must match the oracle computed on the explicit transpose.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let a = random_mat(m, k, &mut rng);
        let b = random_mat(n, k, &mut rng);
        let bt = Mat::from_fn(k, n, |i, j| b.row(j)[i]);
        assert_mats_close(&a.matmul_t(&b), &naive_matmul(&a, &bt), gemm_tol(k))?;
    }

    #[test]
    fn t_matmul_matches_naive_transpose_product(
        m in 1usize..24,
        k in 1usize..96,
        n in 1usize..24,
        seed in any::<u64>(),
    ) {
        // `Aᵀ @ B` with A stored row-major [k,m].
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let a = random_mat(k, m, &mut rng);
        let b = random_mat(k, n, &mut rng);
        let at = Mat::from_fn(m, k, |i, j| a.row(j)[i]);
        assert_mats_close(&a.t_matmul(&b), &naive_matmul(&at, &b), gemm_tol(k))?;
    }

    #[test]
    fn int8_quantize_round_trip_error_is_within_half_scale(
        rows in 1usize..24,
        cols in 1usize..48,
        scale_exp in -3i32..4,
        seed in any::<u64>(),
    ) {
        // Symmetric per-tensor int8: |w - dequantize(quantize(w))| is
        // bounded by half a quantization step, across weight magnitudes.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mag = 10.0f32.powi(scale_exp);
        let w = Mat::from_fn(rows, cols, |_, _| (rng.f32() * 2.0 - 1.0) * mag);
        let q = QuantMat::quantize(&w);
        let deq = q.dequantize();
        let half_step = q.scale() * 0.5 + 1e-12;
        for (orig, back) in w.data().iter().zip(deq.data()) {
            prop_assert!(
                (orig - back).abs() <= half_step,
                "|{orig} - {back}| > {half_step}"
            );
        }
    }

    #[test]
    fn int8_gemv_matches_f64_oracle_of_dequantized_weights(
        k in 1usize..120,
        n in 1usize..96,
        seed in any::<u64>(),
    ) {
        // The i8-weight f32-accumulate GEMV must agree with the f64
        // oracle applied to the dequantized weights: quantization decides
        // the values, the kernel must not add error of its own.
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let x = random_mat(1, k, &mut rng);
        let w = random_mat(k, n, &mut rng);
        let q = QuantMat::quantize(&w);
        let want = naive_matmul(&x, &q.dequantize());
        let mut got = vec![0.0f32; n];
        q.gemv(x.row(0), &mut got);
        for (g, w) in got.iter().zip(want.row(0)) {
            prop_assert!((g - w).abs() <= gemm_tol(k), "got {g} want {w}");
        }
    }

    #[test]
    fn lstm_outputs_are_finite_for_any_reasonable_input(
        batch in 1usize..4,
        dim in 1usize..6,
        t in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let layer = desh_nn::LstmLayer::new(dim, 6, "l", &mut rng);
        let xs: Vec<Mat> = (0..t)
            .map(|_| Mat::from_fn(batch, dim, |_, _| rng.f32() * 10.0 - 5.0))
            .collect();
        let (hs, _) = layer.forward_seq(&xs);
        for h in hs {
            prop_assert!(h.data().iter().all(|x| x.is_finite()));
        }
    }
}
