//! Property-based tests for the neural substrate.

use desh_nn::loss::{mse, mse_vec, softmax, softmax_xent, top_k};
use desh_nn::{Mat, TokenLstm, VectorLstm};
use desh_util::Xoshiro256pp;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-100.0f32..100.0).prop_map(|x| x)
}

proptest! {
    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..5,
        cols in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let logits = Mat::from_fn(rows, cols, |_, _| rng.f32() * 20.0 - 10.0);
        let p = softmax(&logits);
        for r in 0..rows {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn xent_loss_is_nonnegative_and_grad_rows_sum_to_zero(
        rows in 1usize..5,
        cols in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let logits = Mat::from_fn(rows, cols, |_, _| rng.f32() * 8.0 - 4.0);
        let targets: Vec<u32> = (0..rows).map(|_| rng.below(cols as u64) as u32).collect();
        let (loss, grad) = softmax_xent(&logits, &targets);
        prop_assert!(loss >= 0.0);
        // Each gradient row sums to ~0 (softmax minus one-hot).
        for r in 0..rows {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn mse_is_zero_iff_equal(xs in proptest::collection::vec(finite_f32(), 1..32)) {
        let a = Mat::from_vec(1, xs.len(), xs.clone());
        let (zero, grad) = mse(&a, &a);
        prop_assert_eq!(zero, 0.0);
        prop_assert!(grad.data().iter().all(|&g| g == 0.0));
        prop_assert_eq!(mse_vec(&xs, &xs), 0.0);
    }

    #[test]
    fn mse_is_symmetric(
        pairs in proptest::collection::vec((finite_f32(), finite_f32()), 1..16),
    ) {
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        prop_assert!((mse_vec(&xs, &ys) - mse_vec(&ys, &xs)).abs() < 1e-9);
    }

    #[test]
    fn top_k_is_sorted_and_bounded(
        row in proptest::collection::vec(finite_f32(), 1..20),
        k in 1usize..25,
    ) {
        let top = top_k(&row, k);
        prop_assert_eq!(top.len(), k.min(row.len()));
        for w in top.windows(2) {
            prop_assert!(row[w[0] as usize] >= row[w[1] as usize]);
        }
    }

    #[test]
    fn token_lstm_checkpoint_round_trips_any_shape(
        vocab in 2usize..12,
        embed in 1usize..8,
        hidden in 1usize..12,
        layers in 1usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let m = TokenLstm::new(vocab, embed, hidden, layers, &mut rng);
        let m2 = TokenLstm::from_bytes(m.to_bytes()).unwrap();
        let ctx: Vec<u32> = (0..4).map(|i| (i % vocab) as u32).collect();
        prop_assert_eq!(m.predict_probs(&ctx), m2.predict_probs(&ctx));
    }

    #[test]
    fn vector_lstm_checkpoint_round_trips_any_shape(
        dim in 1usize..8,
        hidden in 1usize..12,
        layers in 1usize..3,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let m = VectorLstm::new(dim, hidden, layers, &mut rng);
        let m2 = VectorLstm::from_bytes(m.to_bytes()).unwrap();
        let sample: Vec<f32> = (0..dim).map(|i| i as f32 * 0.1).collect();
        let w: Vec<&[f32]> = vec![&sample];
        prop_assert_eq!(m.predict_next(&w, 5), m2.predict_next(&w, 5));
    }

    #[test]
    fn lstm_outputs_are_finite_for_any_reasonable_input(
        batch in 1usize..4,
        dim in 1usize..6,
        t in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let layer = desh_nn::LstmLayer::new(dim, 6, "l", &mut rng);
        let xs: Vec<Mat> = (0..t)
            .map(|_| Mat::from_fn(batch, dim, |_, _| rng.f32() * 10.0 - 5.0))
            .collect();
        let (hs, _) = layer.forward_seq(&xs);
        for h in hs {
            prop_assert!(h.data().iter().all(|x| x.is_finite()));
        }
    }
}
