//! # Desh — deep learning for system health prediction in HPC
//!
//! A full Rust reproduction of *"Desh: Deep Learning for System Health
//! Prediction of Lead Times to Failure in HPC"* (Das, Mueller, Siegel,
//! Vishnu — HPDC 2018), including every substrate the paper depends on:
//!
//! * [`nn`] — a from-scratch CPU deep-learning library (LSTM with BPTT,
//!   skip-gram embeddings, SGD/RMSprop/Adam).
//! * [`loggen`] — a synthetic Cray-style log generator standing in for the
//!   paper's proprietary production logs (see `DESIGN.md` for the
//!   substitution argument).
//! * [`logparse`] — unstructured-log mining: template extraction,
//!   vocabularies, Safe/Error/Unknown labelling.
//! * [`core`] — the paper's three-phase pipeline: failure-chain learning,
//!   lead-time training, and node-failure prediction with lead times.
//! * [`baselines`] — DeepLog-style and n-gram comparison detectors.
//!
//! ## Quickstart
//!
//! ```
//! use desh::prelude::*;
//!
//! // Generate a (small) synthetic Cray system log with injected failures.
//! let mut profile = SystemProfile::tiny();
//! profile.failures = 30;
//! profile.nodes = 24;
//! let dataset = generate(&profile, 42);
//!
//! // Train on the first 30% of the timeline, predict on the rest.
//! let desh = Desh::new(DeshConfig::fast(), 42);
//! let report = desh.run(&dataset);
//!
//! assert!(report.confusion.recall() > 0.5);
//! println!("{}", report.confusion.summary_row(&report.system));
//! ```

pub mod checkpoint;

pub use desh_baselines as baselines;
pub use desh_core as core;
pub use desh_loggen as loggen;
pub use desh_logparse as logparse;
pub use desh_nn as nn;
pub use desh_obs as obs;
pub use desh_util as util;

/// The names most programs need.
pub mod prelude {
    pub use desh_baselines::{DeepLog, DeepLogConfig, NgramConfig, NgramModel};
    pub use desh_core::{
        extract_chains, extract_episodes, sensitivity_sweep, unknown_contributions, Confusion,
        Desh, DeshConfig, DeshReport, EpisodeConfig, FailureChain, LeadTimeModel, ScoringNet,
        Verdict,
    };
    pub use desh_loggen::{
        generate, Cluster, Dataset, FailureClass, GroundTruthFailure, Label, LogRecord, NodeId,
        Phrase, SystemProfile,
    };
    pub use desh_logparse::{
        extract_template, is_failure_terminal, label_template, parse_lines, parse_records,
        parse_records_with_vocab, ParsedLog,
    };
    pub use desh_nn::{Mat, Optimizer, RmsProp, Sgd, SkipGram, TokenLstm, VectorLstm};
    pub use desh_obs::{render_prometheus, render_summary, JsonlSink, Registry, Telemetry};
    pub use desh_util::{Micros, Summary, Xoshiro256pp};
}
