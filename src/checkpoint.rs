//! Checkpoint encode/decode for the CLI's `.dshm` and `.dshq` model files.
//!
//! `.dshm` layout (all little-endian, via [`desh_util::codec`]):
//!
//! * header: magic `DSHC` + format version,
//! * vocabulary snapshot (template strings, in intern order),
//! * lead-time model constants (`dt_scale`, `history`),
//! * the serialized [`VectorLstm`] network,
//! * **v2+**: the trained failure chains, so `predict` can name each
//!   warning's nearest chain without re-running phase 1,
//! * **v3+**: a provenance stamp — the training run's ledger id and the
//!   FNV-1a hash of the full pipeline config — so `desh-cli runs show`
//!   can link a checkpoint back to the run ledger that produced it (and
//!   detect config drift between the two).
//!
//! Older versions still load: v1 files simply have no chains and no
//! provenance, v2 files no provenance.
//!
//! `.dshq` (magic `DSHQ`) is the int8-quantized sidecar produced by
//! `desh-cli quantize`: the same vocabulary, constants, chains and
//! provenance stamp, but the network section holds a
//! [`desh_nn::QuantizedVectorLstm`] plus the original f32 network's
//! resident byte count (so `predict` can report the compression ratio).
//! A `.dshq` is standalone — it never contains the f32 tensors — and
//! [`load_any_checkpoint`] sniffs the magic to accept either format.

use desh_core::{ChainEvent, FailureChain, LeadTimeModel, ScoringNet};
use desh_logparse::Vocab;
use desh_nn::{QuantizedVectorLstm, VectorLstm};
use desh_util::codec::{Decoder, Encoder};
use desh_util::Micros;
use desh_loggen::NodeId;
use std::path::Path;
use std::sync::Arc;

/// Checkpoint file magic.
pub const MODEL_MAGIC: [u8; 4] = *b"DSHC";
/// Current checkpoint format version. This build reads `1..=MODEL_VERSION`.
pub const MODEL_VERSION: u32 = 3;
/// Quantized checkpoint file magic.
pub const QUANT_MAGIC: [u8; 4] = *b"DSHQ";
/// Current quantized checkpoint format version.
pub const QUANT_VERSION: u32 = 1;

/// Everything a `.dshm` or `.dshq` file holds, decoded.
#[derive(Debug)]
pub struct Checkpoint {
    /// The lead-time model (losses are not persisted; empty after load).
    /// Holds the int8 scoring net when loaded from a `.dshq`.
    pub model: LeadTimeModel,
    /// Training vocabulary, in intern order.
    pub vocab: Arc<Vocab>,
    /// Trained failure chains (empty for v1 files).
    pub chains: Vec<FailureChain>,
    /// Ledger run id this model was trained under (empty for v1/v2
    /// files, or when training ran without `--run-dir`).
    pub run_id: String,
    /// FNV-1a hash of the training config (0 for v1/v2 files).
    pub config_hash: u64,
    /// Format version the file was written with.
    pub version: u32,
    /// Resident bytes of the f32 network the quantized net was derived
    /// from (0 for `.dshm` files) — for compression-ratio reporting.
    pub f32_net_bytes: u64,
}

fn encode_chains(chains: &[FailureChain]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(chains.len() as u64);
    for c in chains {
        e.put_u64(c.node.to_index() as u64);
        e.put_u64(c.terminal_time.0);
        e.put_u64(c.events.len() as u64);
        for ev in &c.events {
            e.put_u64(ev.time.0);
            e.put_u32(ev.phrase);
            e.put_f64(ev.delta_t);
        }
    }
    e.finish().to_vec()
}

fn decode_chains(d: &mut Decoder) -> Result<Vec<FailureChain>, String> {
    let n = d.u64().map_err(|e| e.to_string())? as usize;
    let mut chains = Vec::with_capacity(n);
    for _ in 0..n {
        let node = NodeId::from_index(d.u64().map_err(|e| e.to_string())? as usize);
        let terminal_time = Micros(d.u64().map_err(|e| e.to_string())?);
        let len = d.u64().map_err(|e| e.to_string())? as usize;
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            let time = Micros(d.u64().map_err(|e| e.to_string())?);
            let phrase = d.u32().map_err(|e| e.to_string())?;
            let delta_t = d.f64().map_err(|e| e.to_string())?;
            events.push(ChainEvent { time, phrase, delta_t });
        }
        chains.push(FailureChain { node, terminal_time, events });
    }
    Ok(chains)
}

/// Serialize a trained model at the current format version. `run_id` may
/// be empty (training without a ledger); `config_hash` should be
/// [`desh_core::config_hash`] of the training config.
pub fn encode_checkpoint(
    model: &LeadTimeModel,
    vocab: &Vocab,
    chains: &[FailureChain],
    run_id: &str,
    config_hash: u64,
) -> Vec<u8> {
    let mut e = Encoder::with_header(MODEL_MAGIC, MODEL_VERSION);
    let snapshot = vocab.snapshot();
    e.put_u64(snapshot.len() as u64);
    for t in &snapshot {
        e.put_str(t);
    }
    e.put_f32(model.dt_scale);
    e.put_u64(model.history as u64);
    let net = model
        .net
        .f32()
        .expect("`.dshm` checkpoints hold the f32 network; use encode_quantized_checkpoint")
        .to_bytes();
    e.put_u64(net.len() as u64);
    let mut bytes = e.finish().to_vec();
    bytes.extend_from_slice(&net);
    bytes.extend_from_slice(&encode_chains(chains));
    let mut stamp = Encoder::new();
    stamp.put_str(run_id);
    stamp.put_u64(config_hash);
    bytes.extend_from_slice(&stamp.finish());
    bytes
}

/// Decode a checkpoint from raw bytes, accepting any version this build
/// knows (`1..=MODEL_VERSION`).
pub fn decode_checkpoint(bytes: Vec<u8>) -> Result<Checkpoint, String> {
    if bytes.len() < 8 {
        return Err("model file truncated".into());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if !(1..=MODEL_VERSION).contains(&version) {
        return Err(format!(
            "unsupported model version {version} (this build reads 1..={MODEL_VERSION})"
        ));
    }
    let mut d = Decoder::new(bytes::Bytes::from(bytes));
    d.expect_header(MODEL_MAGIC, version)
        .map_err(|e| e.to_string())?;
    let n = d.u64().map_err(|e| e.to_string())? as usize;
    let vocab = Vocab::new();
    for _ in 0..n {
        vocab.intern(&d.string().map_err(|e| e.to_string())?);
    }
    let dt_scale = d.f32().map_err(|e| e.to_string())?;
    let history = d.u64().map_err(|e| e.to_string())? as usize;
    let net_len = d.u64().map_err(|e| e.to_string())? as usize;
    let mut net_bytes = vec![0u8; net_len];
    for b in net_bytes.iter_mut() {
        *b = d.u8().map_err(|e| e.to_string())?;
    }
    let net = VectorLstm::from_bytes(net_bytes.into()).map_err(|e| e.to_string())?;
    // v1 checkpoints predate the chain trailer; detectors loaded from them
    // run fine but cannot name a warning's matched chain.
    let chains = if version >= 2 { decode_chains(&mut d)? } else { Vec::new() };
    let (run_id, config_hash) = if version >= 3 {
        (
            d.string().map_err(|e| e.to_string())?,
            d.u64().map_err(|e| e.to_string())?,
        )
    } else {
        (String::new(), 0)
    };
    let model = LeadTimeModel {
        net: ScoringNet::F32(net),
        dt_scale,
        vocab_size: n,
        history,
        losses: Vec::new(),
    };
    Ok(Checkpoint {
        model,
        vocab: Arc::new(vocab),
        chains,
        run_id,
        config_hash,
        version,
        f32_net_bytes: 0,
    })
}

/// Serialize an int8-quantized model as a standalone `.dshq` sidecar.
/// `f32_net_bytes` records the resident size of the f32 network the
/// quantized one was derived from (ratio reporting only; pass 0 when
/// unknown).
pub fn encode_quantized_checkpoint(
    model: &LeadTimeModel,
    vocab: &Vocab,
    chains: &[FailureChain],
    run_id: &str,
    config_hash: u64,
    f32_net_bytes: u64,
) -> Vec<u8> {
    let qnet = match &model.net {
        ScoringNet::Int8(q) => q,
        ScoringNet::F32(_) => {
            panic!("`.dshq` checkpoints hold the int8 network; quantize the model first")
        }
    };
    let mut e = Encoder::with_header(QUANT_MAGIC, QUANT_VERSION);
    let snapshot = vocab.snapshot();
    e.put_u64(snapshot.len() as u64);
    for t in &snapshot {
        e.put_str(t);
    }
    e.put_f32(model.dt_scale);
    e.put_u64(model.history as u64);
    e.put_u64(f32_net_bytes);
    let net = qnet.to_bytes();
    e.put_u64(net.len() as u64);
    let mut bytes = e.finish().to_vec();
    bytes.extend_from_slice(&net);
    bytes.extend_from_slice(&encode_chains(chains));
    let mut stamp = Encoder::new();
    stamp.put_str(run_id);
    stamp.put_u64(config_hash);
    bytes.extend_from_slice(&stamp.finish());
    bytes
}

/// Decode a `.dshq` quantized checkpoint.
pub fn decode_quantized_checkpoint(bytes: Vec<u8>) -> Result<Checkpoint, String> {
    let mut d = Decoder::new(bytes::Bytes::from(bytes));
    d.expect_header(QUANT_MAGIC, QUANT_VERSION)
        .map_err(|e| e.to_string())?;
    let n = d.u64().map_err(|e| e.to_string())? as usize;
    let vocab = Vocab::new();
    for _ in 0..n {
        vocab.intern(&d.string().map_err(|e| e.to_string())?);
    }
    let dt_scale = d.f32().map_err(|e| e.to_string())?;
    let history = d.u64().map_err(|e| e.to_string())? as usize;
    let f32_net_bytes = d.u64().map_err(|e| e.to_string())?;
    let net_len = d.u64().map_err(|e| e.to_string())? as usize;
    let mut net_bytes = vec![0u8; net_len];
    for b in net_bytes.iter_mut() {
        *b = d.u8().map_err(|e| e.to_string())?;
    }
    let qnet = QuantizedVectorLstm::from_bytes(net_bytes.into()).map_err(|e| e.to_string())?;
    let chains = decode_chains(&mut d)?;
    let run_id = d.string().map_err(|e| e.to_string())?;
    let config_hash = d.u64().map_err(|e| e.to_string())?;
    let model = LeadTimeModel {
        net: ScoringNet::Int8(qnet),
        dt_scale,
        vocab_size: n,
        history,
        losses: Vec::new(),
    };
    Ok(Checkpoint {
        model,
        vocab: Arc::new(vocab),
        chains,
        run_id,
        config_hash,
        version: QUANT_VERSION,
        f32_net_bytes,
    })
}

/// Read and decode a `.dshm` checkpoint file.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, String> {
    decode_checkpoint(std::fs::read(path).map_err(|e| e.to_string())?)
}

/// Read a checkpoint of either format, sniffing the magic: `DSHC` (f32
/// `.dshm`) or `DSHQ` (int8 `.dshq`).
pub fn load_any_checkpoint(path: &Path) -> Result<Checkpoint, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    if bytes.len() < 4 {
        return Err("model file truncated".into());
    }
    match &bytes[..4] {
        m if m == MODEL_MAGIC => decode_checkpoint(bytes),
        m if m == QUANT_MAGIC => decode_quantized_checkpoint(bytes),
        m => Err(format!(
            "unrecognised model magic {m:?} (expected {MODEL_MAGIC:?} or {QUANT_MAGIC:?})"
        )),
    }
}

/// Resolve the checkpoint an incident capsule references. An explicit
/// `override_path` (the CLI's `--model`) wins; otherwise the path sealed
/// into the capsule meta is used. Returns the loaded checkpoint plus any
/// provenance warnings — config-hash or run-id drift between the capsule
/// and the file actually loaded — for the caller to surface. Drift does
/// not abort the load: a diff against a *different* checkpoint is a
/// legitimate triage move, it just can't be bit-exact.
pub fn resolve_capsule_checkpoint(
    meta: &desh_obs::CapsuleMeta,
    override_path: Option<&Path>,
) -> Result<(Checkpoint, Vec<String>), String> {
    let path = match override_path {
        Some(p) => p.to_path_buf(),
        None => {
            if meta.checkpoint.is_empty() {
                return Err(
                    "capsule does not record a checkpoint path; pass --model <file.dshm|file.dshq>"
                        .to_string(),
                );
            }
            std::path::PathBuf::from(&meta.checkpoint)
        }
    };
    let ck = load_any_checkpoint(&path)
        .map_err(|e| format!("failed to load checkpoint {}: {e}", path.display()))?;
    let mut drift = Vec::new();
    if meta.config_hash != 0 && ck.config_hash != 0 && meta.config_hash != ck.config_hash {
        drift.push(format!(
            "config hash drift: capsule was captured under {:#018x} but {} carries {:#018x} — \
             replay will not be bit-exact",
            meta.config_hash,
            path.display(),
            ck.config_hash
        ));
    }
    if !meta.run_id.is_empty() && !ck.run_id.is_empty() && meta.run_id != ck.run_id {
        drift.push(format!(
            "run id drift: capsule was captured from run '{}' but {} was trained in run '{}'",
            meta.run_id,
            path.display(),
            ck.run_id
        ));
    }
    Ok((ck, drift))
}

#[cfg(test)]
mod tests {
    use super::*;
    use desh_core::{run_phase2, extract_chains, EpisodeConfig};
    use desh_core::config::Phase2Config;
    use desh_loggen::{generate, SystemProfile};
    use desh_logparse::parse_records;
    use desh_util::Xoshiro256pp;

    fn trained_fixture(seed: u64) -> (LeadTimeModel, Arc<Vocab>, Vec<FailureChain>) {
        let d = generate(&SystemProfile::tiny(), seed);
        let parsed = parse_records(&d.records);
        let chains = extract_chains(&parsed, &EpisodeConfig::default());
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut cfg = Phase2Config::default();
        cfg.epochs = 2;
        let model = run_phase2(&chains, parsed.vocab_size(), &cfg, &mut rng);
        (model, parsed.vocab.clone(), chains)
    }

    #[test]
    fn v3_round_trips_with_provenance_stamp() {
        let (model, vocab, chains) = trained_fixture(91);
        let bytes = encode_checkpoint(&model, &vocab, &chains, "run-123-s91", 0xfeed);
        let ck = decode_checkpoint(bytes).unwrap();
        assert_eq!(ck.version, MODEL_VERSION);
        assert_eq!(ck.run_id, "run-123-s91");
        assert_eq!(ck.config_hash, 0xfeed);
        assert_eq!(ck.chains.len(), chains.len());
        assert_eq!(ck.model.dt_scale, model.dt_scale);
        assert_eq!(ck.model.history, model.history);
        assert_eq!(ck.vocab.snapshot(), vocab.snapshot());
        // The network decodes to identical behaviour.
        let seq: Vec<Vec<f32>> = (0..6).map(|i| model.vectorize(30.0 * i as f64, 0)).collect();
        assert_eq!(
            ck.model.net.score_stream_batch(&seq),
            model.net.score_stream_batch(&seq)
        );
    }

    #[test]
    fn quantized_sidecar_round_trips() {
        let (model, vocab, chains) = trained_fixture(94);
        let qmodel = model.quantize();
        let f32_bytes = model.net.resident_bytes() as u64;
        let bytes =
            encode_quantized_checkpoint(&qmodel, &vocab, &chains, "run-94", 0xbeef, f32_bytes);
        assert_eq!(&bytes[..4], &QUANT_MAGIC);
        let ck = decode_quantized_checkpoint(bytes).unwrap();
        assert_eq!(ck.run_id, "run-94");
        assert_eq!(ck.config_hash, 0xbeef);
        assert_eq!(ck.f32_net_bytes, f32_bytes);
        assert_eq!(ck.chains.len(), chains.len());
        assert_eq!(ck.model.net.precision(), "int8");
        assert!(ck.model.net.f32().is_none(), "no f32 tensors in a .dshq");
        // ≥3× smaller resident than the f32 original (acceptance bar).
        assert!(ck.model.net.resident_bytes() as u64 * 3 <= f32_bytes);
        // Scores match the in-memory quantized model exactly.
        let seq: Vec<Vec<f32>> = (0..6).map(|i| model.vectorize(30.0 * i as f64, 0)).collect();
        assert_eq!(
            ck.model.net.score_stream_batch(&seq),
            qmodel.net.score_stream_batch(&seq)
        );
    }

    #[test]
    fn load_any_checkpoint_sniffs_magic() {
        let (model, vocab, chains) = trained_fixture(95);
        let dir = std::env::temp_dir().join("desh_ckpt_sniff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let f32_path = dir.join("m.dshm");
        let q_path = dir.join("m.dshq");
        std::fs::write(&f32_path, encode_checkpoint(&model, &vocab, &chains, "", 0)).unwrap();
        let qmodel = model.quantize();
        std::fs::write(
            &q_path,
            encode_quantized_checkpoint(&qmodel, &vocab, &chains, "", 0, 0),
        )
        .unwrap();
        assert_eq!(
            load_any_checkpoint(&f32_path).unwrap().model.net.precision(),
            "f32"
        );
        assert_eq!(
            load_any_checkpoint(&q_path).unwrap().model.net.precision(),
            "int8"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_files_still_load_without_provenance() {
        let (model, vocab, chains) = trained_fixture(92);
        // A v2 file is exactly a v3 file minus the provenance trailer,
        // with the version field rewritten.
        let mut bytes = encode_checkpoint(&model, &vocab, &chains, "x", 1);
        let mut stamp = Encoder::new();
        stamp.put_str("x");
        stamp.put_u64(1);
        let trailer = stamp.finish().len();
        bytes.truncate(bytes.len() - trailer);
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        let ck = decode_checkpoint(bytes).unwrap();
        assert_eq!(ck.version, 2);
        assert_eq!(ck.run_id, "");
        assert_eq!(ck.config_hash, 0);
        assert_eq!(ck.chains.len(), chains.len());
    }

    #[test]
    fn capsule_resolution_flags_provenance_drift() {
        let (model, vocab, chains) = trained_fixture(96);
        let dir = std::env::temp_dir().join("desh_ckpt_capsule_resolve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.dshm");
        std::fs::write(
            &path,
            encode_checkpoint(&model, &vocab, &chains, "run-a", 0x1111),
        )
        .unwrap();

        let mut meta = desh_obs::CapsuleMeta::default();
        assert!(
            resolve_capsule_checkpoint(&meta, None)
                .unwrap_err()
                .contains("--model"),
            "empty capsule path must ask for --model"
        );

        meta.checkpoint = path.display().to_string();
        meta.config_hash = 0x1111;
        meta.run_id = "run-a".into();
        let (_, drift) = resolve_capsule_checkpoint(&meta, None).unwrap();
        assert!(drift.is_empty(), "{drift:?}");

        meta.config_hash = 0x2222;
        meta.run_id = "run-b".into();
        let (_, drift) = resolve_capsule_checkpoint(&meta, None).unwrap();
        assert_eq!(drift.len(), 2, "{drift:?}");
        assert!(drift[0].contains("config hash drift"));
        assert!(drift[1].contains("run id drift"));

        // --model override wins over a bogus sealed path.
        meta.checkpoint = "/nonexistent/gone.dshm".into();
        assert!(resolve_capsule_checkpoint(&meta, Some(&path)).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (model, vocab, chains) = trained_fixture(93);
        let mut bytes = encode_checkpoint(&model, &vocab, &chains, "", 0);
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = decode_checkpoint(bytes).unwrap_err();
        assert!(err.contains("unsupported model version 99"), "{err}");
    }
}
