//! `desh-cli` — the command-line face of the pipeline.
//!
//! ```text
//! desh-cli generate --profile m1 --seed 7 --out logs.txt [--truth truth.txt]
//! desh-cli train    --log logs.txt --out model.dshm [--seed 7]
//! desh-cli predict  --log logs.txt --model model.dshm [--truth truth.txt]
//! desh-cli analyze  --log logs.txt
//! ```
//!
//! `generate` synthesises a Cray-style log file; `train` runs phases 1+2
//! and checkpoints the lead-time model (plus vocabulary); `predict`
//! streams a log through the online detector and prints warnings, scoring
//! them when ground truth is supplied; `analyze` runs the log mining and
//! unknown-phrase analysis with no model at all.

use desh::checkpoint::{
    encode_checkpoint, encode_quantized_checkpoint, load_any_checkpoint, load_checkpoint,
    resolve_capsule_checkpoint, Checkpoint,
};
use desh::core::{
    config_hash, dataset_fingerprint, render_report, replay_capsule, run_phase1_session,
    run_phase2_session, Backpressure, BatchDetector, IntakeConfig, IntakeServer, OnlineDetector,
    ReplayOptions, RunSession, ShadowScorer, Warning,
};
use desh::obs::{
    default_slo_specs, diff_series, evaluate_gates, install_panic_dump, list_capsules, list_runs,
    load_run, load_series, load_shadow_ledger, parse_json, render_capsules_json,
    render_profile_ascii, render_runs_json, render_series_diff, render_shadow_report_json,
    render_shadow_report_table, sample_every_from_env, BurnPolicy, Capsule, CapsuleContext,
    CapsuleRecorder, CaptureTap, FlightRecorder, HealthInfo, HistorySampler, HttpServer,
    Introspection, Json, JsonValue, MetricsHistory, ShadowIdentity, ShadowLedger, ShadowMonitor,
    ShadowSideSummary, ShadowThresholds, SloEngine, SpanProfiler, WarningLog, CAPTURE_MAX_FILES,
    DEFAULT_SAMPLE_EVERY, DEFAULT_SHADOW_SLACK_SECS, DEFAULT_WATERFALL_RING, HISTORY_CAPACITY,
    HISTORY_RESOLUTION_MS,
};
use desh::prelude::*;
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `runs` and `capsule` take positional subcommands/ids, so they parse
    // their own args.
    let result = if cmd == "runs" {
        cmd_runs(&args[1..])
    } else if cmd == "capsule" {
        cmd_capsule(&args[1..])
    } else if cmd == "shadow" {
        cmd_shadow(&args[1..])
    } else {
        let boolean: &[&str] = match cmd.as_str() {
            "train" => &["fast"],
            "predict" => &["fast", "profile", "int8"],
            "serve" => &["int8", "drop-oldest"],
            "slo" => &["json"],
            _ => &[],
        };
        let opts = match parse_flags(&args[1..], boolean) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        match cmd.as_str() {
            "generate" => cmd_generate(&opts),
            "train" => cmd_train(&opts),
            "predict" => cmd_predict(&opts),
            "serve" => cmd_serve(&opts),
            "drive" => cmd_drive(&opts),
            "quantize" => cmd_quantize(&opts),
            "analyze" => cmd_analyze(&opts),
            "slo" => cmd_slo(&opts),
            "--help" | "-h" | "help" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command {other:?}")),
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
desh-cli — LSTM-based node-failure prediction from HPC logs (Desh, HPDC'18)

USAGE:
  desh-cli generate --profile <m1|m2|m3|m4|tiny> --out <logs.txt>
                    [--truth <truth.txt>] [--seed <n>]
  desh-cli train    --log <logs.txt> --out <model.dshm> [--seed <n>] [--fast]
                    [--telemetry <out.jsonl>] [--run-dir <dir>] [--run-id <id>]
  desh-cli predict  --log <logs.txt> --model <model.dshm|model.dshq>
                    [--int8] [--truth <truth.txt>]
                    [--telemetry <out.jsonl>] [--serve <addr:port>]
                    [--serve-secs <n>] [--trace-dir <dir>] [--runs-dir <dir>]
                    [--capsule-dir <dir>]
                    [--shadow <ckpt>] [--shadow-ledger <out.jsonl>]
                    [--shadow-slack <secs>]
                    [--profile] [--profile-every <n>]
  desh-cli serve    --model <model.dshm|model.dshq> --listen <host:port>
                    [--int8] [--shards <n>] [--slots <n>] [--queue-depth <n>]
                    [--batch-max <n>] [--drop-oldest] [--http <host:port>]
                    [--shadow <ckpt>] [--shadow-ledger <out.jsonl>]
                    [--shadow-slack <secs>] [--serve-secs <n>]
  desh-cli drive    --log <logs.txt> --to <host:port> [--secs <n>] [--rate <lines/s>]
  desh-cli quantize --model <model.dshm> --out <model.dshq>
  desh-cli analyze  --log <logs.txt>
  desh-cli slo      --addr <host:port> [--json]
  desh-cli runs     list            --dir <runs-dir> [--json]
  desh-cli runs     show <id>       --dir <runs-dir>
  desh-cli runs     diff <a> <b>    --dir <runs-dir>
  desh-cli capsule  record          --log <logs.txt> --model <ckpt> --out <dir> [--int8]
  desh-cli capsule  list            --dir <dir> [--json]
  desh-cli capsule  verify <file.dcap>
  desh-cli capsule  replay <file.dcap> [--model <ckpt>]
                    [--allow-backend-mismatch] [--allow-precision-mismatch]
  desh-cli capsule  diff   <file.dcap> [--model <ckpt>]
  desh-cli shadow   report --ledger <shadow.jsonl> [--json]
                    [--max-warning-delta-pct <x>] [--max-pr-regression <y>]
                    [--max-lead-regression-buckets <z>]

  --telemetry writes metric snapshots (counters, gauges, latency-histogram
  quantiles, span timings) as JSON lines and prints a stats block on exit.

  --run-dir opens a training run ledger under <dir>: a manifest (seed,
  config hash, dataset fingerprint), per-epoch series.jsonl rows with
  per-layer gradient stats for all phases, and run.json with end metrics
  keyed against the paper's figures. The divergence watchdog aborts a
  phase on NaN loss or exploding gradients, keeping the last-good weights.
  The checkpoint is stamped with the run id so `runs show` links the two.

  `runs` audits ledgers: list every run under --dir, show one run's
  manifest/phases/metrics, or diff two runs' epoch-aligned loss and
  gradient-norm series.

  --serve starts a read-only introspection HTTP server (GET /healthz,
  /metrics, /metrics/history, /slo, /profile, /warnings[?limit=N],
  /nodes/<id>/flight) during the replay and holds it afterwards —
  forever, or for --serve-secs seconds. --runs-dir adds GET /runs and
  /runs/<id>/series over that ledger directory. --trace-dir records
  per-warning decision traces (warnings.jsonl), a final flight-recorder
  dump (flight.jsonl), SLO alert transitions (slo-alerts.jsonl), and
  installs a panic hook dumping every node ring plus the fired-warning
  log to a timestamped panic-<unix-ms>.jsonl (a second panic never
  overwrites the first). Serving, tracing, or profiling enables
  telemetry implicitly.

  --capsule-dir arms incident capture: every event flows through a
  per-node pre-trigger ring, and a fired warning, an SLO fast-burn, or
  a panic seals a checksummed .dcap capsule into <dir> — raw events,
  decision traces, fired warnings, and the pinned environment
  (checkpoint, config hash, kernel backend, precision, DESH_SHARDS) —
  everything `capsule replay` needs to re-run the incident bit-exactly.
  With --serve, GET /capsules lists the sealed capsules.

  `capsule record` streams a log through the detector with capture
  armed and seals one manual capsule at end of stream. `capsule
  replay` re-runs a capsule against its recorded checkpoint (or
  --model) and asserts bit-exact agreement on every trace word and
  warning field — it exits non-zero on divergence, printing the first
  divergent event and per-field deltas. `capsule diff` is the same
  comparison but expects divergence (backend/precision mismatches
  allowed) and always exits zero. `capsule verify` checks a file's
  seal (magic, version, checksum); `capsule list` summarizes a
  directory of capsules.

  --profile samples per-event latency waterfalls through the detector's
  pipeline stages (1 in DESH_PROFILE_EVERY events unless --profile-every
  overrides it) and prints per-stage quantiles plus the latest waterfall
  after the replay. --serve always attaches the profiler so GET /profile
  works either way.

  `slo` fetches /slo from a serving predictor and renders burn rates per
  objective; --json dumps the raw body.

  `serve` is the fleet-scale streaming intake: raw log lines (one record
  per line, node-id tagged) arrive over TCP on --listen, are
  hash-partitioned by node id across --shards detector shards (default
  DESH_SHARDS), and scored through the wave-batched detector — same-tick
  cell steps from different nodes fuse into multi-row GEMM batches that
  are bit-identical to per-node sequential scoring. Queues are bounded
  (--queue-depth) with explicit backpressure: producers block by default
  (lossless); --drop-oldest sheds the oldest queued record instead,
  counted per shard. --http serves /healthz and /metrics with per-shard
  ingest.events_per_s / ingest.queue_depth / ingest.resident_nodes
  gauges and ingest.dropped counters. `drive` is the matching traffic
  generator: it streams a log file's raw lines to a serving intake,
  optionally looping for --secs at a target --rate.

  --shadow loads a second checkpoint as a *shadow candidate*: every event
  is scored through both models, the primary's warnings stay bit-identical
  to an unshadowed run, and divergence (warning agreement within
  --shadow-slack seconds, per-class lead-time deltas, score-drift EWMA)
  streams into shadow.* metrics, GET /shadow, and — with --shadow-ledger —
  a sealed JSONL ledger pinning both checkpoints' run ids and config
  hashes. GET /shadow/report and `shadow report` evaluate the promotion
  gates (warning-volume delta, precision/recall regression, lead-time p50
  regression in log-scale buckets) and render a PASS/FAIL verdict; `shadow
  report` exits non-zero on FAIL so CI can gate promotions on it.

  `quantize` converts a trained `.dshm` checkpoint into an int8 `.dshq`
  sidecar (symmetric per-tensor weights, f32 accumulate, ~4× smaller
  resident model). `predict` accepts either format; `predict --int8`
  forces the quantized path, converting a `.dshm` in memory if needed.
  The active SIMD kernel backend and precision are printed at load and
  reported at /healthz and in the nn.kernel_backend / nn.int8 gauges.";

type Flags = HashMap<String, String>;

/// Parse `--key value` pairs; keys listed in `boolean` take no value.
/// Which keys are boolean depends on the command — `generate --profile`
/// names a system profile while `predict --profile` toggles the sampler.
fn parse_flags(args: &[String], boolean: &[&str]) -> Result<Flags, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        if boolean.contains(&key) {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(v) = it.next() else {
            return Err(format!("flag --{key} needs a value"));
        };
        out.insert(key.to_string(), v.clone());
    }
    Ok(out)
}

fn need<'a>(opts: &'a Flags, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn seed_of(opts: &Flags) -> u64 {
    opts.get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2018)
}

/// Telemetry handle plus JSONL sink when `--telemetry <path>` was given.
fn telemetry_of(opts: &Flags) -> Result<(Telemetry, Option<JsonlSink>), String> {
    match opts.get("telemetry") {
        Some(path) => {
            let sink = JsonlSink::create(path)
                .map_err(|e| format!("cannot create telemetry file {path}: {e}"))?;
            Ok((Telemetry::enabled(), Some(sink)))
        }
        None => Ok((Telemetry::disabled(), None)),
    }
}

/// Final snapshot → JSONL line + human stats block on stdout.
fn finish_telemetry(
    telemetry: &Telemetry,
    sink: Option<&mut JsonlSink>,
    label: &str,
) -> Result<(), String> {
    let Some(snap) = telemetry.snapshot() else {
        return Ok(());
    };
    if let Some(sink) = sink {
        sink.snapshot(label, &snap).map_err(|e| e.to_string())?;
        sink.flush().map_err(|e| e.to_string())?;
    }
    println!("\nstats:\n{}", render_summary(&snap));
    Ok(())
}

/// `--shadow-slack` in seconds, defaulting to the obs-layer window.
fn shadow_slack_of(opts: &Flags) -> Result<f64, String> {
    match opts.get("shadow-slack").map(|s| s.parse::<f64>()) {
        Some(Ok(s)) if s.is_finite() && s >= 0.0 => Ok(s),
        Some(_) => Err("--shadow-slack needs a non-negative number of seconds".into()),
        None => Ok(DEFAULT_SHADOW_SLACK_SECS),
    }
}

/// Pin a checkpoint's identity for the sealed shadow ledger header.
fn shadow_identity_of(path: &str, ck: &Checkpoint) -> ShadowIdentity {
    ShadowIdentity {
        path: path.to_string(),
        run_id: (!ck.run_id.is_empty()).then(|| ck.run_id.clone()),
        config_hash: Some(ck.config_hash),
        precision: Some(ck.model.net.precision().to_string()),
    }
}

/// Load the `--shadow` candidate checkpoint, mirroring the primary's
/// `--int8` conversion so both sides score through the same kernel path.
fn shadow_checkpoint_of(opts: &Flags) -> Result<Option<(String, Checkpoint)>, String> {
    let Some(path) = opts.get("shadow") else {
        return Ok(None);
    };
    let mut sck = load_any_checkpoint(Path::new(path))
        .map_err(|e| format!("cannot load shadow checkpoint {path}: {e}"))?;
    if opts.contains_key("int8") && sck.model.net.precision() != "int8" {
        sck.f32_net_bytes = sck.model.net.resident_bytes() as u64;
        sck.model = sck.model.quantize();
    }
    match &sck.run_id[..] {
        "" => println!(
            "shadow candidate {path} ({} weights)",
            sck.model.net.precision()
        ),
        id => println!(
            "shadow candidate {path}: run {id} (config hash {:016x}, {} weights)",
            sck.config_hash,
            sck.model.net.precision()
        ),
    }
    Ok(Some((path.clone(), sck)))
}

/// End-of-stream shadow accounting shared by `predict` and `serve`:
/// resolve pendings, fill precision/recall when ground truth is at hand,
/// seal the ledger summary, and print the divergence line.
fn finish_shadow(
    monitor: &ShadowMonitor,
    truth: Option<(&[GroundTruthFailure], &[Warning], &[Warning])>,
) -> Result<(), String> {
    monitor.finish();
    let mut summary = monitor.summary();
    if let Some((failures, primary, candidate)) = truth {
        let fill = |side: &mut ShadowSideSummary, warnings: &[Warning]| {
            let (p, r) = truth_scores(warnings, failures);
            side.precision = p;
            side.recall = r;
        };
        fill(&mut summary.primary, primary);
        fill(&mut summary.candidate, candidate);
    }
    monitor
        .write_summary(&summary)
        .map_err(|e| format!("cannot seal shadow ledger summary: {e}"))?;
    let agreement = summary
        .agreement()
        .map(|a| format!("{:.1}%", a * 100.0))
        .unwrap_or_else(|| "n/a".to_string());
    println!(
        "shadow divergence: {} agree, {} primary-only, {} candidate-only (agreement {agreement}, score drift {:.4})",
        summary.agree_both, summary.primary_only, summary.candidate_only, summary.score_drift
    );
    Ok(())
}

/// A warning counts when it lands on the failing node inside the same
/// 10-minute ahead-of-failure window `predict --truth` scores with.
fn warning_hits(w: &Warning, f: &GroundTruthFailure) -> bool {
    w.node == f.node && w.at < f.time && f.time.saturating_sub(w.at).as_mins_f64() < 10.0
}

/// Precision (useful warnings / warnings) and recall (caught failures /
/// failures) against ground truth; `None` when the denominator is empty.
fn truth_scores(
    warnings: &[Warning],
    failures: &[GroundTruthFailure],
) -> (Option<f64>, Option<f64>) {
    let tp = warnings
        .iter()
        .filter(|w| failures.iter().any(|f| warning_hits(w, f)))
        .count();
    let caught = failures
        .iter()
        .filter(|f| warnings.iter().any(|w| warning_hits(w, f)))
        .count();
    let precision = (!warnings.is_empty()).then(|| tp as f64 / warnings.len() as f64);
    let recall = (!failures.is_empty()).then(|| caught as f64 / failures.len() as f64);
    (precision, recall)
}

fn profile_of(name: &str) -> Result<SystemProfile, String> {
    match name.to_ascii_lowercase().as_str() {
        "m1" => Ok(SystemProfile::m1()),
        "m2" => Ok(SystemProfile::m2()),
        "m3" => Ok(SystemProfile::m3()),
        "m4" => Ok(SystemProfile::m4()),
        "tiny" => Ok(SystemProfile::tiny()),
        other => Err(format!("unknown profile {other:?}")),
    }
}

fn cmd_generate(opts: &Flags) -> Result<(), String> {
    let profile = profile_of(need(opts, "profile")?)?;
    let out = PathBuf::from(need(opts, "out")?);
    let dataset = generate(&profile, seed_of(opts));
    let n = desh::loggen::io::write_log_file(&out, &dataset).map_err(|e| e.to_string())?;
    println!(
        "wrote {n} log lines for {} ({} nodes, {} failures) to {}",
        profile.name,
        profile.nodes,
        dataset.failures.len(),
        out.display()
    );
    if let Some(truth) = opts.get("truth") {
        desh::loggen::io::write_truth_file(Path::new(truth), &dataset.failures)
            .map_err(|e| e.to_string())?;
        println!("wrote ground truth to {truth}");
    }
    Ok(())
}

fn cmd_train(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let out = PathBuf::from(need(opts, "out")?);
    let (records, bad) = desh::loggen::io::read_log_file(&log_path).map_err(|e| e.to_string())?;
    if records.is_empty() {
        return Err("log file contains no parseable lines".into());
    }
    println!(
        "read {} records ({} corrupt lines skipped)",
        records.len(),
        bad.len()
    );

    let cfg = if opts.contains_key("fast") {
        DeshConfig::fast()
    } else {
        DeshConfig::default()
    };
    let (telemetry, mut sink) = telemetry_of(opts)?;
    let mut session = match opts.get("run-dir") {
        Some(dir) => {
            let root = PathBuf::from(dir);
            let fp = dataset_fingerprint(&records);
            let s = match opts.get("run-id") {
                Some(id) => RunSession::create_with_id(&root, id.clone(), seed_of(opts), &cfg, fp),
                None => RunSession::create(&root, seed_of(opts), &cfg, fp),
            }
            .map_err(|e| format!("cannot open run ledger under {dir}: {e}"))?;
            println!("run ledger: {} ({})", s.run_id(), s.dir().display());
            Some(s)
        }
        None => None,
    };
    let mut rng = Xoshiro256pp::seed_from_u64(seed_of(opts));
    let train_span = telemetry.span("train");
    let parsed = desh::logparse::parse_records_telemetry(
        &records,
        Arc::new(desh::logparse::Vocab::new()),
        &telemetry,
    );
    println!(
        "vocabulary: {} templates; running phase 1...",
        parsed.vocab_size()
    );
    let p1 = match run_phase1_session(&parsed, &cfg, &mut rng, &telemetry, session.as_mut()) {
        Ok(p1) => p1,
        Err(d) => return Err(finish_diverged(session, d)),
    };
    println!(
        "phase 1 done: {} failure chains, 3-step accuracy {:.1}%",
        p1.chains.len(),
        p1.accuracy_kstep * 100.0
    );
    if p1.chains.is_empty() {
        return Err("no failure chains found in the training log".into());
    }
    println!("running phase 2 ({} epochs)...", cfg.phase2.epochs);
    let model = match run_phase2_session(
        &p1.chains,
        parsed.vocab_size(),
        &cfg.phase2,
        &mut rng,
        &telemetry,
        session.as_mut(),
    ) {
        Ok(m) => m,
        Err(d) => return Err(finish_diverged(session, d)),
    };
    drop(train_span);

    // Checkpoint, stamped with the ledger run id + config hash so
    // `runs show` can link the two (empty id when no --run-dir).
    let (run_id, cfg_hash) = match &session {
        Some(s) => (s.run_id().to_string(), s.config_hash()),
        None => (String::new(), config_hash(&cfg)),
    };
    let bytes = encode_checkpoint(&model, &parsed.vocab, &p1.chains, &run_id, cfg_hash);
    std::fs::write(&out, &bytes).map_err(|e| e.to_string())?;
    println!(
        "checkpointed lead-time model ({} KiB) to {}",
        bytes.len() / 1024,
        out.display()
    );
    if let Some(mut s) = session {
        s.note_checkpoint(&out.display().to_string());
        let metrics = vec![
            ("phase1_accuracy_kstep".to_string(), p1.accuracy_kstep),
            ("chains_trained".to_string(), p1.chains.len() as f64),
        ];
        let dir = s.dir().to_path_buf();
        s.finish(&metrics).map_err(|e| e.to_string())?;
        println!("run ledger finalized: {}", dir.join("run.json").display());
    }
    finish_telemetry(&telemetry, sink.as_mut(), "train")?;
    Ok(())
}

/// Seal a diverged run's ledger and describe the abort for the operator.
fn finish_diverged(session: Option<RunSession>, d: desh::obs::DivergenceRecord) -> String {
    if let Some(s) = session {
        let dir = s.dir().to_path_buf();
        if s.finish(&[]).is_ok() {
            eprintln!(
                "divergence details in {} and {}",
                dir.join("run.json").display(),
                dir.join("divergence.json").display()
            );
        }
    }
    let ckpt = d
        .last_good_checkpoint
        .as_deref()
        .map(|c| format!("; last good weights: {c}"))
        .unwrap_or_default();
    format!(
        "training diverged in {} at epoch {}: {} ({}){}",
        d.phase, d.epoch, d.reason, d.detail, ckpt
    )
}

/// Records between periodic telemetry snapshots in `predict`.
const SNAPSHOT_EVERY: usize = 25_000;

/// Fired warnings kept in the in-memory log the `/warnings` route serves.
const WARNING_LOG_CAP: usize = 1024;

fn cmd_predict(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let model_path = PathBuf::from(need(opts, "model")?);
    let serve_secs = match opts.get("serve-secs").map(|s| s.parse::<u64>()) {
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => return Err("--serve-secs needs an integer number of seconds".into()),
        None => None,
    };
    let profile_every = match opts.get("profile-every").map(|s| s.parse::<u64>()) {
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => return Err("--profile-every needs an integer".into()),
        None => None,
    };
    let (mut telemetry, mut sink) = telemetry_of(opts)?;
    let tracing = opts.contains_key("serve") || opts.contains_key("trace-dir");
    let profiling = opts.contains_key("profile") || opts.contains_key("serve");
    if (tracing || profiling) && !telemetry.is_enabled() {
        // The introspection routes, trace dumps, and span profiler read
        // the registry, so any of them turns it on even without
        // --telemetry.
        telemetry = Telemetry::enabled();
    }
    let mut ck = telemetry.time("load_model", || load_any_checkpoint(&model_path))?;
    if !ck.run_id.is_empty() {
        println!(
            "model trained under run {} (config hash {:016x})",
            ck.run_id, ck.config_hash
        );
    }
    if opts.contains_key("int8") && ck.model.net.precision() != "int8" {
        // Convert in memory: the quantized model replaces the f32 one, so
        // only the int8 weights stay resident for the replay.
        ck.f32_net_bytes = ck.model.net.resident_bytes() as u64;
        ck.model = ck.model.quantize();
    }
    let precision = ck.model.net.precision();
    let resident = ck.model.net.resident_bytes();
    match (precision, ck.f32_net_bytes) {
        ("int8", f32b) if f32b > 0 => println!(
            "scoring path: {} kernels, {precision} weights ({:.1} KiB resident, {:.1}x smaller than f32)",
            desh::nn::kernel_backend_name(),
            resident as f64 / 1024.0,
            f32b as f64 / resident as f64
        ),
        _ => println!(
            "scoring path: {} kernels, {precision} weights ({:.1} KiB resident)",
            desh::nn::kernel_backend_name(),
            resident as f64 / 1024.0
        ),
    }
    let shadow_slack = shadow_slack_of(opts)?;
    let shadow_ck = shadow_checkpoint_of(opts)?;
    let health = HealthInfo {
        version: env!("CARGO_PKG_VERSION").to_string(),
        run_id: (!ck.run_id.is_empty()).then(|| ck.run_id.clone()),
        config_hash: Some(ck.config_hash),
        kernel_backend: Some(desh::nn::kernel_backend_name().to_string()),
        precision: Some(precision.to_string()),
        shadow_run_id: shadow_ck
            .as_ref()
            .and_then(|(_, s)| (!s.run_id.is_empty()).then(|| s.run_id.clone())),
        shadow_config_hash: shadow_ck.as_ref().map(|(_, s)| s.config_hash),
    };
    let primary_identity = shadow_identity_of(&model_path.display().to_string(), &ck);
    let (model, vocab, chains) = (ck.model, ck.vocab, ck.chains);
    let (records, bad) = desh::loggen::io::read_log_file(&log_path).map_err(|e| e.to_string())?;
    println!(
        "read {} records ({} corrupt skipped)",
        records.len(),
        bad.len()
    );

    let cfg = DeshConfig::default();
    let mut detector =
        OnlineDetector::with_telemetry(model, Arc::clone(&vocab), cfg.clone(), &telemetry);
    if chains.is_empty() {
        println!("note: v1 checkpoint without chains; warnings will not name a matched chain");
    } else {
        detector.attach_chains(&chains);
    }
    let mut shadow = match &shadow_ck {
        Some((spath, sck)) => {
            let monitor = Arc::new(ShadowMonitor::new(&telemetry, shadow_slack));
            if let Some(path) = opts.get("shadow-ledger") {
                let ledger = ShadowLedger::create(
                    Path::new(path),
                    shadow_slack,
                    &primary_identity,
                    &shadow_identity_of(spath, sck),
                )
                .map_err(|e| format!("cannot create shadow ledger {path}: {e}"))?;
                monitor.attach_ledger(ledger);
                println!("shadow ledger sealing into {path}");
            }
            // The candidate is a full independent detector (own model,
            // own vocabulary) on a private registry, so its online.*
            // metrics never mix with the primary's.
            let mut candidate =
                OnlineDetector::new(sck.model.clone(), Arc::clone(&sck.vocab), cfg.clone());
            if !sck.chains.is_empty() {
                candidate.attach_chains(&sck.chains);
            }
            detector.set_observe_scores(true);
            println!("shadow scoring armed (warning match slack {shadow_slack:.0}s)");
            Some(ShadowScorer::new(candidate, monitor))
        }
        None => None,
    };
    let capsules = match opts.get("capsule-dir") {
        Some(dir) => {
            let tap = Arc::new(CaptureTap::new());
            detector.attach_capture(Arc::clone(&tap));
            let ctx = capsule_context(
                &model_path,
                &ck.run_id,
                ck.config_hash,
                precision,
                vocab.len(),
                chains.len(),
                &cfg,
            );
            let rec = Arc::new(
                CapsuleRecorder::new(tap, ctx, PathBuf::from(dir))
                    .map_err(|e| format!("cannot open capsule dir {dir}: {e}"))?,
            );
            println!(
                "incident capture armed: sealing .dcap capsules into {dir} (max {CAPTURE_MAX_FILES})"
            );
            Some(rec)
        }
        None => None,
    };
    let profiler = if profiling {
        let registry = telemetry.registry().expect("profiling enables telemetry");
        let every = profile_every.unwrap_or_else(|| sample_every_from_env(DEFAULT_SAMPLE_EVERY));
        let p = SpanProfiler::new(
            registry,
            "online",
            &OnlineDetector::PROFILE_STAGES,
            every,
            DEFAULT_WATERFALL_RING,
        );
        detector.attach_profiler(Arc::clone(&p));
        println!("span profiler sampling 1 in {} events", p.every());
        Some(p)
    } else {
        None
    };
    let trace = if tracing {
        let flight = Arc::new(FlightRecorder::new());
        let warning_log = Arc::new(WarningLog::new(WARNING_LOG_CAP));
        detector.attach_tracing(Arc::clone(&flight), Arc::clone(&warning_log));
        Some((flight, warning_log))
    } else {
        None
    };
    let trace_dir = opts.get("trace-dir").map(PathBuf::from);
    let mut warn_file = None;
    if let (Some(dir), Some((flight, warning_log))) = (&trace_dir, &trace) {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        install_panic_dump(
            Arc::clone(flight),
            Some(Arc::clone(warning_log)),
            dir.clone(),
            capsules.clone(),
        );
        let path = dir.join("warnings.jsonl");
        warn_file = Some(
            std::fs::File::create(&path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
        );
    }
    let mut history_sampler = None;
    let mut server = match opts.get("serve") {
        Some(addr) => {
            let (flight, warning_log) = trace.as_ref().expect("--serve implies tracing");
            let registry = telemetry.registry().expect("tracing enables telemetry");
            let mut state = Introspection::new(
                Arc::clone(registry),
                Arc::clone(flight),
                Arc::clone(warning_log),
            );
            let runs_routes = if let Some(dir) = opts.get("runs-dir") {
                state = state.with_runs_dir(PathBuf::from(dir));
                " /runs /runs/<id>/series"
            } else {
                ""
            };
            // Serving-path observability: a background sampler snapshots
            // the registry into the /metrics/history ring and feeds the
            // SLO burn-rate engine behind /slo and /healthz degradation.
            let history = MetricsHistory::new(Arc::clone(registry), HISTORY_CAPACITY);
            let mut slo = SloEngine::new(default_slo_specs(), BurnPolicy::default());
            if let Some(dir) = &trace_dir {
                let path = dir.join("slo-alerts.jsonl");
                slo = slo.with_sink(
                    JsonlSink::create(&path)
                        .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
                );
            }
            if let Some(rec) = &capsules {
                // A fast burn is exactly the moment to freeze evidence:
                // seal a capsule the instant the engine pages.
                slo = slo.with_capture(Arc::clone(rec));
            }
            let slo = Arc::new(slo);
            history_sampler = Some(HistorySampler::start(
                Arc::clone(&history),
                Duration::from_millis(HISTORY_RESOLUTION_MS),
                Some(Arc::clone(&slo)),
            ));
            state = state
                .with_history(history)
                .with_slo(slo)
                .with_health(health.clone());
            if let Some(p) = &profiler {
                state = state.with_profilers(vec![Arc::clone(p)]);
            }
            let capsule_routes = if let Some(rec) = &capsules {
                state = state.with_capsules(rec.dir().to_path_buf());
                " /capsules"
            } else {
                ""
            };
            let shadow_routes = if let Some(sh) = &shadow {
                state = state.with_shadow(Arc::clone(sh.monitor()), ShadowThresholds::default());
                " /shadow /shadow/report"
            } else {
                ""
            };
            let s = HttpServer::start(addr, state)
                .map_err(|e| format!("cannot bind introspection server on {addr}: {e}"))?;
            println!(
                "introspection server on http://{}/ (/healthz /metrics /metrics/history /slo /profile /warnings /nodes/<id>/flight{capsule_routes}{shadow_routes}{runs_routes})",
                s.addr()
            );
            Some(s)
        }
        None => None,
    };

    let mut warnings = Vec::new();
    let mut shadow_warnings = Vec::new();
    let stream_span = telemetry.span("stream");
    for (i, r) in records.iter().enumerate() {
        let fired = detector.ingest(r);
        if let Some(sh) = shadow.as_mut() {
            // Observation only: the candidate scores the same record and
            // divergence streams into the monitor; `fired` is untouched.
            if let Some(cw) = sh.observe(r, fired.as_ref(), detector.last_score()) {
                shadow_warnings.push(cw);
            }
        }
        if let Some(w) = fired {
            println!(
                "[{}] {}",
                w.at.as_clock(),
                OnlineDetector::format_warning(&w)
            );
            if let Some(sink) = sink.as_mut() {
                sink.event(
                    "warning",
                    &[
                        ("node", w.node.to_string().into()),
                        ("at_us", JsonValue::U64(w.at.0)),
                        ("predicted_lead_secs", w.predicted_lead_secs.into()),
                        ("score", w.score.into()),
                        ("class", w.class.name().into()),
                    ],
                )
                .map_err(|e| e.to_string())?;
                // A warning is the line an operator greps for after a crash;
                // it must not sit in a buffer if the process dies next.
                sink.flush().map_err(|e| e.to_string())?;
            }
            if let (Some(f), Some((_, warning_log))) = (warn_file.as_mut(), &trace) {
                if let Some(rec) = warning_log.snapshot().last() {
                    writeln!(f, "{}", rec.to_json()).map_err(|e| e.to_string())?;
                    f.flush().map_err(|e| e.to_string())?;
                }
            }
            if let Some(rec) = &capsules {
                match rec.capture("warning", Some(&w.node.to_string()), w.at.0) {
                    Ok(Some(path)) => println!("  sealed incident capsule {}", path.display()),
                    Ok(None) => {}
                    Err(e) => eprintln!("  capsule capture failed: {e}"),
                }
            }
            warnings.push(w);
        }
        if (i + 1) % SNAPSHOT_EVERY == 0 {
            if let (Some(sink), Some(snap)) = (sink.as_mut(), telemetry.snapshot()) {
                sink.snapshot(&format!("progress@{}", i + 1), &snap)
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    drop(stream_span);
    println!(
        "\n{} warnings over {} anomaly events",
        warnings.len(),
        detector.events_seen()
    );
    if let Some(p) = &profiler {
        if opts.contains_key("profile") {
            print!("\n{}", render_profile_ascii(p));
        }
    }

    let truth = match opts.get("truth") {
        Some(p) => Some(
            desh::loggen::io::read_truth_file(Path::new(p)).map_err(|e| e.to_string())?,
        ),
        None => None,
    };
    if let Some(truth) = &truth {
        let caught = truth
            .iter()
            .filter(|f| warnings.iter().any(|w| warning_hits(w, f)))
            .count();
        println!(
            "scored against ground truth: {caught}/{} failures warned ahead of time",
            truth.len()
        );
    }
    if let Some(sh) = &shadow {
        finish_shadow(
            sh.monitor(),
            truth
                .as_deref()
                .map(|t| (t, &warnings[..], &shadow_warnings[..])),
        )?;
    }
    if let (Some(dir), Some((flight, _))) = (&trace_dir, &trace) {
        let path = dir.join("flight.jsonl");
        std::fs::write(&path, flight.dump_all_jsonl()).map_err(|e| e.to_string())?;
        println!(
            "trace dir {}: warnings.jsonl ({} warnings), flight.jsonl ({} nodes)",
            dir.display(),
            warnings.len(),
            flight.node_names().len()
        );
    }
    if let Some(rec) = &capsules {
        println!(
            "{} incident capsule(s) sealed in {} — triage with `desh-cli capsule list --dir {}`",
            rec.written(),
            rec.dir().display(),
            rec.dir().display()
        );
    }
    finish_telemetry(&telemetry, sink.as_mut(), "final")?;
    if let Some(server) = server.as_mut() {
        match serve_secs {
            Some(secs) => {
                println!("holding introspection server for {secs}s...");
                std::thread::sleep(Duration::from_secs(secs));
                server.stop();
            }
            None => {
                println!("replay done; serving introspection until killed...");
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
    }
    drop(history_sampler);
    Ok(())
}

/// `serve`: the fleet-scale streaming intake. Binds a TCP line listener,
/// hash-partitions incoming records across shard-owned batch detectors,
/// and (optionally) exposes the introspection HTTP server with per-shard
/// ingest gauges.
fn cmd_serve(opts: &Flags) -> Result<(), String> {
    let model_path = PathBuf::from(need(opts, "model")?);
    let listen = need(opts, "listen")?;
    let parse_num = |key: &str, default: usize| -> Result<usize, String> {
        match opts.get(key).map(|s| s.parse::<usize>()) {
            Some(Ok(n)) if n > 0 => Ok(n),
            Some(_) => Err(format!("--{key} needs a positive integer")),
            None => Ok(default),
        }
    };
    let shards = parse_num("shards", desh::nn::shard_count())?;
    let slots = parse_num("slots", 256)?;
    let serve_secs = match opts.get("serve-secs").map(|s| s.parse::<u64>()) {
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => return Err("--serve-secs needs an integer number of seconds".into()),
        None => None,
    };
    let mut icfg = IntakeConfig {
        queue_depth: parse_num("queue-depth", IntakeConfig::default().queue_depth)?,
        batch_max: parse_num("batch-max", IntakeConfig::default().batch_max)?,
        ..IntakeConfig::default()
    };
    if opts.contains_key("drop-oldest") {
        icfg.backpressure = Backpressure::DropOldest;
    }

    let telemetry = Telemetry::enabled();
    let mut ck = load_any_checkpoint(&model_path)?;
    if !ck.run_id.is_empty() {
        println!(
            "model trained under run {} (config hash {:016x})",
            ck.run_id, ck.config_hash
        );
    }
    if opts.contains_key("int8") && ck.model.net.precision() != "int8" {
        ck.f32_net_bytes = ck.model.net.resident_bytes() as u64;
        ck.model = ck.model.quantize();
    }
    let precision = ck.model.net.precision();
    println!(
        "scoring path: {} kernels, {precision} weights ({:.1} KiB resident per shard)",
        desh::nn::kernel_backend_name(),
        ck.model.net.resident_bytes() as f64 / 1024.0
    );
    let shadow_slack = shadow_slack_of(opts)?;
    let shadow_ck = shadow_checkpoint_of(opts)?;
    // One monitor shared by every shard's scorer: agreement and drift are
    // fleet-wide numbers, not per-shard ones.
    let shadow_monitor = match &shadow_ck {
        Some((spath, sck)) => {
            let monitor = Arc::new(ShadowMonitor::new(&telemetry, shadow_slack));
            if let Some(path) = opts.get("shadow-ledger") {
                let ledger = ShadowLedger::create(
                    Path::new(path),
                    shadow_slack,
                    &shadow_identity_of(&model_path.display().to_string(), &ck),
                    &shadow_identity_of(spath, sck),
                )
                .map_err(|e| format!("cannot create shadow ledger {path}: {e}"))?;
                monitor.attach_ledger(ledger);
                println!("shadow ledger sealing into {path}");
            }
            println!("shadow scoring armed across shards (warning match slack {shadow_slack:.0}s)");
            Some(monitor)
        }
        None => None,
    };

    let cfg = DeshConfig::default();
    let flight = Arc::new(FlightRecorder::new());
    let warning_log = Arc::new(WarningLog::new(WARNING_LOG_CAP));
    let detectors: Vec<BatchDetector> = (0..shards)
        .map(|_| {
            let mut d = BatchDetector::with_telemetry(
                ck.model.clone(),
                Arc::clone(&ck.vocab),
                cfg.clone(),
                slots,
                &telemetry,
            );
            if !ck.chains.is_empty() {
                d.attach_chains(&ck.chains);
            }
            d.attach_tracing(Arc::clone(&flight), Arc::clone(&warning_log));
            if let (Some((_, sck)), Some(mon)) = (&shadow_ck, &shadow_monitor) {
                let mut candidate =
                    OnlineDetector::new(sck.model.clone(), Arc::clone(&sck.vocab), cfg.clone());
                if !sck.chains.is_empty() {
                    candidate.attach_chains(&sck.chains);
                }
                d.attach_shadow(ShadowScorer::new(candidate, Arc::clone(mon)));
            }
            d
        })
        .collect();
    if ck.chains.is_empty() {
        println!("note: v1 checkpoint without chains; warnings will not name a matched chain");
    }

    let mut server = IntakeServer::start(detectors, icfg.clone(), &telemetry);
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| format!("cannot bind intake listener on {listen}: {e}"))?;
    let bound = listener.local_addr().map_err(|e| e.to_string())?;
    server.serve_tcp(listener).map_err(|e| e.to_string())?;
    println!(
        "intake listening on {bound}: {shards} shards x {slots} slots, queue depth {}, batch window {}, backpressure {:?}",
        icfg.queue_depth, icfg.batch_max, icfg.backpressure
    );

    let mut http = match opts.get("http") {
        Some(addr) => {
            let registry = telemetry.registry().expect("serve enables telemetry");
            let health = HealthInfo {
                version: env!("CARGO_PKG_VERSION").to_string(),
                run_id: (!ck.run_id.is_empty()).then(|| ck.run_id.clone()),
                config_hash: Some(ck.config_hash),
                kernel_backend: Some(desh::nn::kernel_backend_name().to_string()),
                precision: Some(precision.to_string()),
                shadow_run_id: shadow_ck
                    .as_ref()
                    .and_then(|(_, s)| (!s.run_id.is_empty()).then(|| s.run_id.clone())),
                shadow_config_hash: shadow_ck.as_ref().map(|(_, s)| s.config_hash),
            };
            let mut state = Introspection::new(
                Arc::clone(registry),
                Arc::clone(&flight),
                Arc::clone(&warning_log),
            )
            .with_health(health);
            let shadow_routes = if let Some(mon) = &shadow_monitor {
                state = state.with_shadow(Arc::clone(mon), ShadowThresholds::default());
                " /shadow /shadow/report"
            } else {
                ""
            };
            let s = HttpServer::start(addr, state)
                .map_err(|e| format!("cannot bind introspection server on {addr}: {e}"))?;
            println!(
                "introspection server on http://{}/ (/healthz /metrics /warnings /nodes/<id>/flight{shadow_routes})",
                s.addr()
            );
            Some(s)
        }
        None => None,
    };

    let started = std::time::Instant::now();
    let deadline = serve_secs.map(Duration::from_secs);
    match deadline {
        Some(d) => println!("serving for {}s...", d.as_secs()),
        None => println!("serving until killed..."),
    }
    loop {
        std::thread::sleep(Duration::from_millis(250));
        for w in server.take_warnings() {
            println!(
                "[{}] {}",
                w.at.as_clock(),
                OnlineDetector::format_warning(&w)
            );
        }
        if let Some(d) = deadline {
            if started.elapsed() >= d {
                break;
            }
        }
    }
    server.drain();
    for w in server.take_warnings() {
        println!(
            "[{}] {}",
            w.at.as_clock(),
            OnlineDetector::format_warning(&w)
        );
    }
    let processed = server.records_processed();
    let dropped = server.records_dropped();
    let parse_errors = server.parse_errors();
    let dets = server.stop();
    let events: u64 = dets.iter().map(|d| d.events_seen()).sum();
    let warnings: u64 = dets.iter().map(|d| d.warnings_emitted()).sum();
    let secs = started.elapsed().as_secs_f64();
    println!(
        "intake done: {processed} records in {secs:.1}s ({:.0} records/s), {dropped} dropped, {parse_errors} parse errors",
        processed as f64 / secs.max(1e-9)
    );
    println!("scored {events} anomaly events, {warnings} warnings across {shards} shards");
    if let Some(mon) = &shadow_monitor {
        finish_shadow(mon, None)?;
    }
    if let Some(s) = http.as_mut() {
        s.stop();
    }
    Ok(())
}

/// `drive`: stream a log file's raw lines to a serving intake over TCP —
/// the traffic half of a serve/drive soak pair.
fn cmd_drive(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let to = need(opts, "to")?;
    let secs = match opts.get("secs").map(|s| s.parse::<u64>()) {
        Some(Ok(n)) => Some(Duration::from_secs(n)),
        Some(Err(_)) => return Err("--secs needs an integer number of seconds".into()),
        None => None,
    };
    let rate = match opts.get("rate").map(|s| s.parse::<u64>()) {
        Some(Ok(n)) if n > 0 => Some(n),
        Some(_) => return Err("--rate needs a positive lines/s integer".into()),
        None => None,
    };
    let text = std::fs::read_to_string(&log_path)
        .map_err(|e| format!("cannot read {}: {e}", log_path.display()))?;
    // Skip blanks and `#` comments (the loggen header) — every line we
    // send should parse as a record, so drive/serve accounting lines up.
    let lines: Vec<&str> = text
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        })
        .collect();
    if lines.is_empty() {
        return Err(format!("{} has no log lines", log_path.display()));
    }
    let stream = std::net::TcpStream::connect(to)
        .map_err(|e| format!("cannot connect to intake at {to}: {e}"))?;
    let mut out = std::io::BufWriter::new(stream);
    let started = std::time::Instant::now();
    let mut sent = 0u64;
    'drive: loop {
        for line in &lines {
            out.write_all(line.as_bytes()).map_err(|e| e.to_string())?;
            out.write_all(b"\n").map_err(|e| e.to_string())?;
            sent += 1;
            if sent % 1024 == 0 {
                if let Some(r) = rate {
                    let due = Duration::from_secs_f64(sent as f64 / r as f64);
                    let elapsed = started.elapsed();
                    if due > elapsed {
                        std::thread::sleep(due - elapsed);
                    }
                }
                if let Some(d) = secs {
                    if started.elapsed() >= d {
                        break 'drive;
                    }
                }
            }
        }
        if secs.is_none() {
            break;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    drop(out);
    let secs_elapsed = started.elapsed().as_secs_f64();
    println!(
        "drove {sent} lines to {to} in {secs_elapsed:.1}s ({:.0} lines/s)",
        sent as f64 / secs_elapsed.max(1e-9)
    );
    Ok(())
}

/// `quantize`: convert a trained `.dshm` checkpoint into a standalone
/// int8 `.dshq` sidecar. Vocabulary, chains and the provenance stamp are
/// carried through; the f32 tensors are not.
fn cmd_quantize(opts: &Flags) -> Result<(), String> {
    let model_path = PathBuf::from(need(opts, "model")?);
    let out = PathBuf::from(need(opts, "out")?);
    if let Ok(head) = std::fs::read(&model_path) {
        if head.starts_with(b"DSHQ") {
            return Err(format!(
                "{} is already an int8-quantized checkpoint (.dshq); quantize takes the f32 .dshm",
                model_path.display()
            ));
        }
    }
    let ck = load_checkpoint(&model_path)?;
    let f32_bytes = ck.model.net.resident_bytes();
    let qmodel = ck.model.quantize();
    let q_bytes = qmodel.net.resident_bytes();
    let bytes = encode_quantized_checkpoint(
        &qmodel,
        &ck.vocab,
        &ck.chains,
        &ck.run_id,
        ck.config_hash,
        f32_bytes as u64,
    );
    std::fs::write(&out, &bytes).map_err(|e| e.to_string())?;
    println!("quantized {} -> {}", model_path.display(), out.display());
    println!(
        "  weights: {:.1} KiB f32 -> {:.1} KiB int8 ({:.1}x smaller resident model)",
        f32_bytes as f64 / 1024.0,
        q_bytes as f64 / 1024.0,
        f32_bytes as f64 / q_bytes as f64
    );
    println!(
        "  file: {:.1} KiB (vocab + chains + provenance carried through)",
        bytes.len() as f64 / 1024.0
    );
    if !ck.run_id.is_empty() {
        println!(
            "  provenance: run {} (config hash {:016x})",
            ck.run_id, ck.config_hash
        );
    }
    Ok(())
}

/// Fetch `path` from a serving predictor's introspection server. Accepts
/// 503 too: `/healthz` degrades to it on a fast SLO burn and the body is
/// exactly what the operator wants to see then.
fn http_get_body(addr: &str, path: &str) -> Result<String, String> {
    use std::io::Read;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| e.to_string())?;
    let mut buf = String::new();
    stream.read_to_string(&mut buf).map_err(|e| e.to_string())?;
    let (head, body) = buf
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") && !status.contains(" 503 ") {
        return Err(format!("{addr}{path}: {status}"));
    }
    Ok(body.to_string())
}

fn cmd_slo(opts: &Flags) -> Result<(), String> {
    let addr = need(opts, "addr")?;
    let body = http_get_body(addr, "/slo")?;
    if opts.contains_key("json") {
        println!("{}", body.trim_end());
        return Ok(());
    }
    let v = parse_json(&body).map_err(|e| format!("bad /slo response: {e}"))?;
    let burning = matches!(v.get("burning"), Some(Json::Bool(true)));
    println!(
        "SLO status at {addr}: {}",
        if burning {
            "BURNING — error budget is being consumed at paging rate"
        } else {
            "ok"
        }
    );
    if let Some(slos) = v.get("slos").and_then(Json::as_arr) {
        println!(
            "{:<22} {:<10} {:>8}  burn per window",
            "slo", "status", "budget"
        );
        for s in slos {
            let name = s.get("name").and_then(Json::as_str).unwrap_or("?");
            let status = s.get("status").and_then(Json::as_str).unwrap_or("?");
            let budget = s.get("budget").and_then(Json::as_f64).unwrap_or(f64::NAN);
            let mut windows = String::new();
            for w in s.get("windows").and_then(Json::as_arr).unwrap_or_default() {
                let secs = w.get("window_ms").and_then(Json::as_u64).unwrap_or(0) / 1000;
                if !windows.is_empty() {
                    windows.push_str("  ");
                }
                match w.get("burn").and_then(Json::as_f64) {
                    Some(b) => windows.push_str(&format!("{secs}s:{b:.2}x")),
                    None => windows.push_str(&format!("{secs}s:no-data")),
                }
            }
            println!("{name:<22} {status:<10} {budget:>8.3}  {windows}");
        }
    }
    let alerts = v.get("alerts").and_then(Json::as_arr).unwrap_or_default();
    if !alerts.is_empty() {
        println!("\nrecent alert transitions (newest last):");
        for a in alerts.iter().rev().take(10).rev() {
            println!(
                "  {} {} -> {} (burn {:.2}x) at {}ms",
                a.get("slo").and_then(Json::as_str).unwrap_or("?"),
                a.get("from").and_then(Json::as_str).unwrap_or("?"),
                a.get("to").and_then(Json::as_str).unwrap_or("?"),
                a.get("burn").and_then(Json::as_f64).unwrap_or(f64::NAN),
                a.get("at_ms").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }
    Ok(())
}

fn cmd_analyze(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let (records, bad) = desh::loggen::io::read_log_file(&log_path).map_err(|e| e.to_string())?;
    let parsed = parse_records(&records);
    println!(
        "{} records ({} corrupt), {} templates, {} nodes",
        records.len(),
        bad.len(),
        parsed.vocab_size(),
        parsed.per_node.len()
    );
    let chains = extract_chains(&parsed, &EpisodeConfig::default());
    println!("failure chains: {}", chains.len());

    println!("\nbusiest nodes by anomaly count:");
    for a in desh::logparse::node_activity(&parsed).iter().take(5) {
        println!(
            "  {:<12} {:>6} events, {:>5} anomalies",
            a.node.to_string(),
            a.events,
            a.anomalies
        );
    }
    let bursts = desh::logparse::find_bursts(&parsed, 4, Micros::from_secs(30));
    if !bursts.is_empty() {
        println!("\nmessage bursts (>=4 repeats within 30s):");
        for b in bursts.iter().take(5) {
            println!(
                "  {:<12} x{:<3} {}",
                b.node.to_string(),
                b.count,
                parsed.template(b.phrase)
            );
        }
    }
    println!("\nunknown phrases by contribution to failures:");
    for c in unknown_contributions(&parsed, &chains, 10).iter().take(12) {
        println!(
            "  {:>5.1}%  ({:>4}/{:<4})  {}",
            c.contribution_pct(),
            c.in_chain,
            c.total,
            c.template
        );
    }
    Ok(())
}

/// `runs list|show|diff` — positional subcommands, so this parses its own
/// argument list instead of going through [`parse_flags`] first.
fn cmd_shadow(args: &[String]) -> Result<(), String> {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (pos, flags) = args.split_at(split);
    let opts = parse_flags(flags, &["json"])?;
    match pos {
        [sub] if sub == "report" => shadow_report(&opts),
        _ => Err(
            "usage: desh-cli shadow report --ledger <shadow.jsonl> [--json] \
             [--max-warning-delta-pct <x>] [--max-pr-regression <y>] \
             [--max-lead-regression-buckets <z>]"
                .into(),
        ),
    }
}

/// `shadow report`: render the promotion-gate verdict from a sealed
/// shadow ledger. Exits non-zero on FAIL so CI can gate on it.
fn shadow_report(opts: &Flags) -> Result<(), String> {
    let ledger = need(opts, "ledger")?;
    let doc = load_shadow_ledger(Path::new(ledger))
        .map_err(|e| format!("cannot load shadow ledger {ledger}: {e}"))?;
    let summary = doc
        .summary
        .ok_or_else(|| format!("{ledger} has no summary line (run did not finish?)"))?;
    let mut th = ShadowThresholds::default();
    let parse_f = |key: &str, slot: &mut f64| -> Result<(), String> {
        if let Some(v) = opts.get(key) {
            *slot = v
                .parse::<f64>()
                .map_err(|_| format!("--{key} needs a number"))?;
        }
        Ok(())
    };
    parse_f("max-warning-delta-pct", &mut th.max_warning_delta_pct)?;
    parse_f("max-pr-regression", &mut th.max_pr_regression)?;
    parse_f(
        "max-lead-regression-buckets",
        &mut th.max_lead_p50_regression_buckets,
    )?;
    let report = evaluate_gates(&summary, &th);
    if opts.contains_key("json") {
        print!("{}", render_shadow_report_json(&report));
    } else {
        print!("{}", render_shadow_report_table(&report));
    }
    if report.pass {
        Ok(())
    } else {
        Err("shadow promotion gate FAILED".into())
    }
}

fn cmd_runs(args: &[String]) -> Result<(), String> {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (pos, flags) = args.split_at(split);
    let opts = parse_flags(flags, &["json"])?;
    let dir = PathBuf::from(opts.get("dir").map(String::as_str).unwrap_or("runs"));
    match pos {
        [sub] if sub == "list" => runs_list(&dir, opts.contains_key("json")),
        [sub, id] if sub == "show" => runs_show(&dir, id),
        [sub, a, b] if sub == "diff" => runs_diff(&dir, a, b),
        _ => Err("usage: desh-cli runs <list | show <id> | diff <a> <b>> --dir <runs-dir>".into()),
    }
}

fn runs_list(dir: &Path, json: bool) -> Result<(), String> {
    let mut runs = list_runs(dir);
    // Newest first: the operator asking "what just trained?" wants the
    // latest run at the top of the table.
    runs.reverse();
    if json {
        println!("{}", render_runs_json(&runs));
        return Ok(());
    }
    if runs.is_empty() {
        println!("no runs under {}", dir.display());
        return Ok(());
    }
    println!(
        "{:<28} {:<11} {:>6} {:>7} {:>12}  phases",
        "run", "status", "seed", "epochs", "final loss"
    );
    for r in &runs {
        let seed = r
            .manifest
            .as_ref()
            .map(|m| m.seed.to_string())
            .unwrap_or_else(|| "?".into());
        let epochs: u64 = r.phases.iter().map(|p| p.epochs).sum();
        let final_loss = r
            .phases
            .last()
            .map(|p| format!("{:.6}", p.final_loss))
            .unwrap_or_else(|| "-".into());
        let phases: Vec<&str> = r.phases.iter().map(|p| p.name.as_str()).collect();
        println!(
            "{:<28} {:<11} {:>6} {:>7} {:>12}  {}",
            r.id,
            r.status,
            seed,
            epochs,
            final_loss,
            phases.join(",")
        );
    }
    Ok(())
}

fn runs_show(dir: &Path, id: &str) -> Result<(), String> {
    let run = load_run(&dir.join(id)).map_err(|e| format!("cannot load run {id}: {e}"))?;
    println!("run {} — {}", run.id, run.status);
    if let Some(m) = &run.manifest {
        println!(
            "  seed {} | shards {} | threads {}",
            m.seed, m.shards, m.threads
        );
        println!("  dataset {}", m.dataset);
        println!("  config hash {:016x}", m.config_hash);
        for (k, v) in &m.config {
            println!("    {k} = {v}");
        }
    }
    if !run.phases.is_empty() {
        println!("  phases:");
        for p in &run.phases {
            println!(
                "    {:<8} {:>4} epochs  {:>9.1} ms  final loss {:.6}",
                p.name,
                p.epochs,
                p.wall_us as f64 / 1000.0,
                p.final_loss
            );
        }
    }
    if let Some(d) = &run.divergence {
        println!(
            "  DIVERGED in {} at epoch {}: {} ({})",
            d.phase, d.epoch, d.reason, d.detail
        );
        if let Some(c) = &d.last_good_checkpoint {
            println!("  last good weights: {c}");
        }
    }
    if !run.end_metrics.is_empty() {
        println!("  end metrics:");
        for (k, v) in &run.end_metrics {
            println!("    {k} = {v:.4}");
        }
    }
    match &run.checkpoint {
        Some(path) => {
            println!("  checkpoint: {path}");
            // Close the loop: the v3 stamp inside the file should point
            // right back at this ledger.
            match load_checkpoint(Path::new(path)) {
                Ok(ck) if ck.run_id == run.id => {
                    let cfg_ok = run
                        .manifest
                        .as_ref()
                        .is_none_or(|m| m.config_hash == ck.config_hash);
                    if cfg_ok {
                        println!("    stamp verified: run id and config hash match");
                    } else {
                        println!(
                            "    WARNING: checkpoint config hash {:016x} differs from manifest",
                            ck.config_hash
                        );
                    }
                }
                Ok(ck) => println!(
                    "    WARNING: checkpoint is stamped with run {:?}, not this run",
                    ck.run_id
                ),
                Err(e) => println!("    (checkpoint not readable: {e})"),
            }
        }
        None => println!("  checkpoint: none recorded"),
    }
    Ok(())
}

fn runs_diff(dir: &Path, a: &str, b: &str) -> Result<(), String> {
    let sa = load_series(&dir.join(a)).map_err(|e| format!("cannot load series for {a}: {e}"))?;
    let sb = load_series(&dir.join(b)).map_err(|e| format!("cannot load series for {b}: {e}"))?;
    if sa.is_empty() && sb.is_empty() {
        return Err(format!("neither {a} nor {b} has any series rows"));
    }
    print!("{}", render_series_diff(&diff_series(&sa, &sb), a, b));
    let ra = load_run(&dir.join(a));
    let rb = load_run(&dir.join(b));
    if let (Ok(ra), Ok(rb)) = (ra, rb) {
        let mut printed_header = false;
        for (k, va) in &ra.end_metrics {
            if k.starts_with("paper.") {
                continue;
            }
            if let Some((_, vb)) = rb.end_metrics.iter().find(|(kb, _)| kb == k) {
                if !printed_header {
                    println!("\nend metrics ({a} -> {b}):");
                    printed_header = true;
                }
                println!("  {k:<24} {va:>12.4} -> {vb:>12.4} ({:+.4})", vb - va);
            }
        }
    }
    Ok(())
}

/// Provenance + pinned environment stamped into every capsule this
/// process seals. Decision-relevant config rides along so replay can
/// rebuild the exact same detector.
fn capsule_context(
    model_path: &Path,
    run_id: &str,
    config_hash: u64,
    precision: &str,
    vocab_len: usize,
    chains: usize,
    cfg: &DeshConfig,
) -> CapsuleContext {
    CapsuleContext {
        checkpoint: model_path.display().to_string(),
        run_id: run_id.to_string(),
        config_hash,
        backend: desh::nn::kernel_backend_name().to_string(),
        precision: precision.to_string(),
        shards: std::env::var("DESH_SHARDS").unwrap_or_default(),
        vocab_len: vocab_len as u64,
        chains: chains as u64,
        session_gap_secs: cfg.episodes.session_gap_secs,
        mse_threshold: cfg.phase3.mse_threshold,
        min_evidence: cfg.phase3.min_evidence as u64,
        score_scale: cfg.phase3.score_scale,
    }
}

/// `capsule record|list|verify|replay|diff` — positional subcommands,
/// parsed like [`cmd_runs`].
fn cmd_capsule(args: &[String]) -> Result<(), String> {
    let split = args
        .iter()
        .position(|a| a.starts_with("--"))
        .unwrap_or(args.len());
    let (pos, flags) = args.split_at(split);
    let opts = parse_flags(
        flags,
        &[
            "json",
            "int8",
            "allow-backend-mismatch",
            "allow-precision-mismatch",
        ],
    )?;
    match pos {
        [sub] if sub == "record" => capsule_record(&opts),
        [sub] if sub == "list" => capsule_list(&opts),
        [sub, file] if sub == "verify" => capsule_verify(file),
        [sub, file] if sub == "replay" => capsule_replay(file, &opts, false),
        [sub, file] if sub == "diff" => capsule_replay(file, &opts, true),
        _ => Err(
            "usage: desh-cli capsule <record --log <logs> --model <ckpt> --out <dir> [--int8] \
             | list --dir <dir> [--json] | verify <file.dcap> \
             | replay <file.dcap> [--model <ckpt>] [--allow-backend-mismatch] [--allow-precision-mismatch] \
             | diff <file.dcap> [--model <ckpt>]>"
                .into(),
        ),
    }
}

/// `capsule record`: stream a log through the detector with incident
/// capture armed and seal one manual capsule at end of stream. The
/// deterministic counterpart of `predict --capsule-dir`, for building a
/// known-good capsule on demand (CI soak, triage repros).
fn capsule_record(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let model_path = PathBuf::from(need(opts, "model")?);
    let out = PathBuf::from(need(opts, "out")?);
    let mut ck = load_any_checkpoint(&model_path)?;
    if opts.contains_key("int8") && ck.model.net.precision() != "int8" {
        ck.model = ck.model.quantize();
    }
    let precision = ck.model.net.precision();
    let Checkpoint {
        model,
        vocab,
        chains,
        run_id,
        config_hash,
        ..
    } = ck;
    let cfg = DeshConfig::default();
    let mut detector = OnlineDetector::new(model, Arc::clone(&vocab), cfg.clone());
    if !chains.is_empty() {
        detector.attach_chains(&chains);
    }
    let tap = Arc::new(CaptureTap::new());
    detector.attach_capture(Arc::clone(&tap));
    let ctx = capsule_context(
        &model_path,
        &run_id,
        config_hash,
        precision,
        vocab.len(),
        chains.len(),
        &cfg,
    );
    let rec = CapsuleRecorder::new(tap, ctx, out.clone())
        .map_err(|e| format!("cannot open capsule dir {}: {e}", out.display()))?;
    let (records, bad) = desh::loggen::io::read_log_file(&log_path).map_err(|e| e.to_string())?;
    println!(
        "recording: {} records ({} corrupt skipped) on {} kernels, {precision} weights",
        records.len(),
        bad.len(),
        desh::nn::kernel_backend_name()
    );
    let mut fired = 0usize;
    let mut last_at = 0u64;
    for r in &records {
        last_at = r.time.0;
        if detector.ingest(r).is_some() {
            fired += 1;
        }
    }
    match rec
        .capture("manual", None, last_at)
        .map_err(|e| format!("cannot seal capsule: {e}"))?
    {
        Some(path) => {
            let capsule = Capsule::read(&path)?;
            println!(
                "sealed {} — {} events ({} traced), {} warnings, clean_start={}",
                path.display(),
                capsule.events.len(),
                capsule.traced_events(),
                capsule.warnings.len(),
                capsule.meta.clean_start
            );
            println!("{fired} warnings fired during recording");
            Ok(())
        }
        None => Err("nothing captured: the log produced no anomaly events".into()),
    }
}

fn capsule_list(opts: &Flags) -> Result<(), String> {
    let dir = PathBuf::from(opts.get("dir").map(String::as_str).unwrap_or("capsules"));
    let caps = list_capsules(&dir).map_err(|e| format!("cannot scan {}: {e}", dir.display()))?;
    if opts.contains_key("json") {
        println!("{}", render_capsules_json(&caps));
        return Ok(());
    }
    if caps.is_empty() {
        println!("no capsules under {}", dir.display());
        return Ok(());
    }
    println!(
        "{:<40} {:<13} {:<12} {:>7} {:>9}  backend/precision",
        "capsule", "reason", "node", "events", "warnings"
    );
    for c in &caps {
        if let Some(err) = &c.error {
            println!("{:<40} CORRUPT: {err}", c.file);
            continue;
        }
        let node = if c.meta.node.is_empty() {
            "(all)"
        } else {
            &c.meta.node
        };
        println!(
            "{:<40} {:<13} {:<12} {:>7} {:>9}  {}/{}{}",
            c.file,
            c.meta.reason,
            node,
            c.events,
            c.warnings,
            c.meta.backend,
            c.meta.precision,
            if c.meta.clean_start {
                ""
            } else {
                "  (ring-truncated)"
            }
        );
    }
    Ok(())
}

/// `capsule verify`: check the seal (magic, version, length, checksum)
/// and decode; prints a one-line summary or the exact corruption error.
fn capsule_verify(file: &str) -> Result<(), String> {
    let capsule = Capsule::read(Path::new(file))?;
    let m = &capsule.meta;
    println!(
        "OK {file}: reason={} node={} events={} (traced {}) warnings={} backend={} precision={} clean_start={}",
        m.reason,
        if m.node.is_empty() { "(all)" } else { &m.node },
        capsule.events.len(),
        capsule.traced_events(),
        capsule.warnings.len(),
        m.backend,
        m.precision,
        m.clean_start
    );
    if !m.checkpoint.is_empty() {
        println!(
            "   checkpoint {} (run {:?}, config hash {:016x})",
            m.checkpoint, m.run_id, m.config_hash
        );
    }
    Ok(())
}

/// `capsule replay` (`expect_divergence=false`) asserts bit-exact
/// agreement and exits non-zero on divergence; `capsule diff`
/// (`expect_divergence=true`) runs the same comparison with environment
/// mismatches allowed and always exits zero — its job is the diff itself.
fn capsule_replay(file: &str, opts: &Flags, expect_divergence: bool) -> Result<(), String> {
    let capsule = Capsule::read(Path::new(file))?;
    let override_path = opts.get("model").map(PathBuf::from);
    let (ck, drift) = resolve_capsule_checkpoint(&capsule.meta, override_path.as_deref())?;
    for d in &drift {
        println!("warning: {d}");
    }
    let replay_opts = ReplayOptions {
        allow_backend_mismatch: expect_divergence || opts.contains_key("allow-backend-mismatch"),
        allow_precision_mismatch: expect_divergence
            || opts.contains_key("allow-precision-mismatch"),
    };
    let report = replay_capsule(&capsule, ck.model, ck.vocab, &ck.chains, &replay_opts)?;
    print!("{}", render_report(&report));
    if expect_divergence {
        return Ok(());
    }
    if report.bit_exact() {
        Ok(())
    } else {
        Err(format!(
            "replay diverged from the capture (see diff above); \
             if the environment intentionally differs, use `capsule diff {file}`"
        ))
    }
}
