//! `desh-cli` — the command-line face of the pipeline.
//!
//! ```text
//! desh-cli generate --profile m1 --seed 7 --out logs.txt [--truth truth.txt]
//! desh-cli train    --log logs.txt --out model.dshm [--seed 7]
//! desh-cli predict  --log logs.txt --model model.dshm [--truth truth.txt]
//! desh-cli analyze  --log logs.txt
//! ```
//!
//! `generate` synthesises a Cray-style log file; `train` runs phases 1+2
//! and checkpoints the lead-time model (plus vocabulary); `predict`
//! streams a log through the online detector and prints warnings, scoring
//! them when ground truth is supplied; `analyze` runs the log mining and
//! unknown-phrase analysis with no model at all.

use desh::core::{run_phase1_telemetry, run_phase2_telemetry, ChainEvent, OnlineDetector};
use desh::obs::{
    install_panic_dump, FlightRecorder, HttpServer, Introspection, JsonValue, WarningLog,
};
use desh::prelude::*;
use desh_util::codec::{Decoder, Encoder};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_flags(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "train" => cmd_train(&opts),
        "predict" => cmd_predict(&opts),
        "analyze" => cmd_analyze(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
desh-cli — LSTM-based node-failure prediction from HPC logs (Desh, HPDC'18)

USAGE:
  desh-cli generate --profile <m1|m2|m3|m4|tiny> --out <logs.txt>
                    [--truth <truth.txt>] [--seed <n>]
  desh-cli train    --log <logs.txt> --out <model.dshm> [--seed <n>] [--fast]
                    [--telemetry <out.jsonl>]
  desh-cli predict  --log <logs.txt> --model <model.dshm> [--truth <truth.txt>]
                    [--telemetry <out.jsonl>] [--serve <addr:port>]
                    [--serve-secs <n>] [--trace-dir <dir>]
  desh-cli analyze  --log <logs.txt>

  --telemetry writes metric snapshots (counters, gauges, latency-histogram
  quantiles, span timings) as JSON lines and prints a stats block on exit.

  --serve starts a read-only introspection HTTP server (GET /healthz,
  /metrics, /warnings, /nodes/<id>/flight) during the replay and holds it
  afterwards — forever, or for --serve-secs seconds. --trace-dir records
  per-warning decision traces (warnings.jsonl), a final flight-recorder
  dump (flight.jsonl), and installs a panic hook dumping every node ring
  to panic-flight.jsonl. Both flags enable telemetry implicitly.";

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            return Err(format!("unexpected argument {a:?}"));
        };
        if key == "fast" {
            out.insert(key.to_string(), "true".to_string());
            continue;
        }
        let Some(v) = it.next() else {
            return Err(format!("flag --{key} needs a value"));
        };
        out.insert(key.to_string(), v.clone());
    }
    Ok(out)
}

fn need<'a>(opts: &'a Flags, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{key}"))
}

fn seed_of(opts: &Flags) -> u64 {
    opts.get("seed").and_then(|s| s.parse().ok()).unwrap_or(2018)
}

/// Telemetry handle plus JSONL sink when `--telemetry <path>` was given.
fn telemetry_of(opts: &Flags) -> Result<(Telemetry, Option<JsonlSink>), String> {
    match opts.get("telemetry") {
        Some(path) => {
            let sink = JsonlSink::create(path)
                .map_err(|e| format!("cannot create telemetry file {path}: {e}"))?;
            Ok((Telemetry::enabled(), Some(sink)))
        }
        None => Ok((Telemetry::disabled(), None)),
    }
}

/// Final snapshot → JSONL line + human stats block on stdout.
fn finish_telemetry(
    telemetry: &Telemetry,
    sink: Option<&mut JsonlSink>,
    label: &str,
) -> Result<(), String> {
    let Some(snap) = telemetry.snapshot() else { return Ok(()) };
    if let Some(sink) = sink {
        sink.snapshot(label, &snap).map_err(|e| e.to_string())?;
        sink.flush().map_err(|e| e.to_string())?;
    }
    println!("\nstats:\n{}", render_summary(&snap));
    Ok(())
}

fn profile_of(name: &str) -> Result<SystemProfile, String> {
    match name.to_ascii_lowercase().as_str() {
        "m1" => Ok(SystemProfile::m1()),
        "m2" => Ok(SystemProfile::m2()),
        "m3" => Ok(SystemProfile::m3()),
        "m4" => Ok(SystemProfile::m4()),
        "tiny" => Ok(SystemProfile::tiny()),
        other => Err(format!("unknown profile {other:?}")),
    }
}

fn cmd_generate(opts: &Flags) -> Result<(), String> {
    let profile = profile_of(need(opts, "profile")?)?;
    let out = PathBuf::from(need(opts, "out")?);
    let dataset = generate(&profile, seed_of(opts));
    let n = desh::loggen::io::write_log_file(&out, &dataset).map_err(|e| e.to_string())?;
    println!(
        "wrote {n} log lines for {} ({} nodes, {} failures) to {}",
        profile.name,
        profile.nodes,
        dataset.failures.len(),
        out.display()
    );
    if let Some(truth) = opts.get("truth") {
        desh::loggen::io::write_truth_file(Path::new(truth), &dataset.failures)
            .map_err(|e| e.to_string())?;
        println!("wrote ground truth to {truth}");
    }
    Ok(())
}

/// Checkpoint layout: header, vocabulary snapshot, lead-time model
/// parameters, the serialized VectorLstm, and (since version 2) the
/// trained failure chains so `predict` can name each warning's nearest
/// chain without re-running phase 1. Version-1 files load fine — they just
/// have no chains to match against.
const MODEL_MAGIC: [u8; 4] = *b"DSHC";
const MODEL_VERSION: u32 = 2;

fn encode_chains(chains: &[FailureChain]) -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_u64(chains.len() as u64);
    for c in chains {
        e.put_u64(c.node.to_index() as u64);
        e.put_u64(c.terminal_time.0);
        e.put_u64(c.events.len() as u64);
        for ev in &c.events {
            e.put_u64(ev.time.0);
            e.put_u32(ev.phrase);
            e.put_f64(ev.delta_t);
        }
    }
    e.finish().to_vec()
}

fn decode_chains(d: &mut Decoder) -> Result<Vec<FailureChain>, String> {
    let n = d.u64().map_err(|e| e.to_string())? as usize;
    let mut chains = Vec::with_capacity(n);
    for _ in 0..n {
        let node = NodeId::from_index(d.u64().map_err(|e| e.to_string())? as usize);
        let terminal_time = Micros(d.u64().map_err(|e| e.to_string())?);
        let len = d.u64().map_err(|e| e.to_string())? as usize;
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            let time = Micros(d.u64().map_err(|e| e.to_string())?);
            let phrase = d.u32().map_err(|e| e.to_string())?;
            let delta_t = d.f64().map_err(|e| e.to_string())?;
            events.push(ChainEvent { time, phrase, delta_t });
        }
        chains.push(FailureChain { node, terminal_time, events });
    }
    Ok(chains)
}

fn cmd_train(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let out = PathBuf::from(need(opts, "out")?);
    let (records, bad) =
        desh::loggen::io::read_log_file(&log_path).map_err(|e| e.to_string())?;
    if records.is_empty() {
        return Err("log file contains no parseable lines".into());
    }
    println!("read {} records ({} corrupt lines skipped)", records.len(), bad.len());

    let cfg = if opts.contains_key("fast") { DeshConfig::fast() } else { DeshConfig::default() };
    let (telemetry, mut sink) = telemetry_of(opts)?;
    let mut rng = Xoshiro256pp::seed_from_u64(seed_of(opts));
    let train_span = telemetry.span("train");
    let parsed = desh::logparse::parse_records_telemetry(
        &records,
        Arc::new(desh::logparse::Vocab::new()),
        &telemetry,
    );
    println!("vocabulary: {} templates; running phase 1...", parsed.vocab_size());
    let p1 = run_phase1_telemetry(&parsed, &cfg, &mut rng, &telemetry);
    println!(
        "phase 1 done: {} failure chains, 3-step accuracy {:.1}%",
        p1.chains.len(),
        p1.accuracy_kstep * 100.0
    );
    if p1.chains.is_empty() {
        return Err("no failure chains found in the training log".into());
    }
    println!("running phase 2 ({} epochs)...", cfg.phase2.epochs);
    let model =
        run_phase2_telemetry(&p1.chains, parsed.vocab_size(), &cfg.phase2, &mut rng, &telemetry);
    drop(train_span);

    // Checkpoint: vocabulary + model constants + network weights + chains.
    let mut e = Encoder::with_header(MODEL_MAGIC, MODEL_VERSION);
    let vocab = parsed.vocab.snapshot();
    e.put_u64(vocab.len() as u64);
    for t in &vocab {
        e.put_str(t);
    }
    e.put_f32(model.dt_scale);
    e.put_u64(model.history as u64);
    let net = model.model.to_bytes();
    e.put_u64(net.len() as u64);
    let mut bytes = e.finish().to_vec();
    bytes.extend_from_slice(&net);
    bytes.extend_from_slice(&encode_chains(&p1.chains));
    std::fs::write(&out, &bytes).map_err(|e| e.to_string())?;
    println!(
        "checkpointed lead-time model ({} KiB) to {}",
        bytes.len() / 1024,
        out.display()
    );
    finish_telemetry(&telemetry, sink.as_mut(), "train")?;
    Ok(())
}

type LoadedModel = (LeadTimeModel, Arc<desh::logparse::Vocab>, Vec<FailureChain>);

fn load_model(path: &Path) -> Result<LoadedModel, String> {
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    if bytes.len() < 8 {
        return Err("model file truncated".into());
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if !(1..=MODEL_VERSION).contains(&version) {
        return Err(format!(
            "unsupported model version {version} (this build reads 1..={MODEL_VERSION})"
        ));
    }
    let mut d = Decoder::new(bytes::Bytes::from(bytes));
    d.expect_header(MODEL_MAGIC, version).map_err(|e| e.to_string())?;
    let n = d.u64().map_err(|e| e.to_string())? as usize;
    let vocab = desh::logparse::Vocab::new();
    for _ in 0..n {
        vocab.intern(&d.string().map_err(|e| e.to_string())?);
    }
    let dt_scale = d.f32().map_err(|e| e.to_string())?;
    let history = d.u64().map_err(|e| e.to_string())? as usize;
    let net_len = d.u64().map_err(|e| e.to_string())? as usize;
    let mut net_bytes = vec![0u8; net_len];
    for b in net_bytes.iter_mut() {
        *b = d.u8().map_err(|e| e.to_string())?;
    }
    let net = VectorLstm::from_bytes(net_bytes.into()).map_err(|e| e.to_string())?;
    // v1 checkpoints predate the chain trailer; detectors loaded from them
    // run fine but cannot name a warning's matched chain.
    let chains = if version >= 2 { decode_chains(&mut d)? } else { Vec::new() };
    let model = LeadTimeModel {
        model: net,
        dt_scale,
        vocab_size: n,
        history,
        losses: Vec::new(),
    };
    Ok((model, Arc::new(vocab), chains))
}

/// Records between periodic telemetry snapshots in `predict`.
const SNAPSHOT_EVERY: usize = 25_000;

/// Fired warnings kept in the in-memory log the `/warnings` route serves.
const WARNING_LOG_CAP: usize = 1024;

fn cmd_predict(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let model_path = PathBuf::from(need(opts, "model")?);
    let serve_secs = match opts.get("serve-secs").map(|s| s.parse::<u64>()) {
        Some(Ok(n)) => Some(n),
        Some(Err(_)) => return Err("--serve-secs needs an integer number of seconds".into()),
        None => None,
    };
    let (mut telemetry, mut sink) = telemetry_of(opts)?;
    let tracing = opts.contains_key("serve") || opts.contains_key("trace-dir");
    if tracing && !telemetry.is_enabled() {
        // The introspection routes and trace dumps read the registry, so
        // tracing turns it on even without --telemetry.
        telemetry = Telemetry::enabled();
    }
    let (model, vocab, chains) = telemetry.time("load_model", || load_model(&model_path))?;
    let (records, bad) =
        desh::loggen::io::read_log_file(&log_path).map_err(|e| e.to_string())?;
    println!("read {} records ({} corrupt skipped)", records.len(), bad.len());

    let mut detector =
        OnlineDetector::with_telemetry(model, vocab, DeshConfig::default(), &telemetry);
    if chains.is_empty() {
        println!("note: v1 checkpoint without chains; warnings will not name a matched chain");
    } else {
        detector.attach_chains(&chains);
    }
    let trace = if tracing {
        let flight = Arc::new(FlightRecorder::new());
        let warning_log = Arc::new(WarningLog::new(WARNING_LOG_CAP));
        detector.attach_tracing(Arc::clone(&flight), Arc::clone(&warning_log));
        Some((flight, warning_log))
    } else {
        None
    };
    let trace_dir = opts.get("trace-dir").map(PathBuf::from);
    let mut warn_file = None;
    if let (Some(dir), Some((flight, _))) = (&trace_dir, &trace) {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        install_panic_dump(Arc::clone(flight), dir.join("panic-flight.jsonl"));
        let path = dir.join("warnings.jsonl");
        warn_file = Some(
            std::fs::File::create(&path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
        );
    }
    let mut server = match opts.get("serve") {
        Some(addr) => {
            let (flight, warning_log) = trace.as_ref().expect("--serve implies tracing");
            let registry = telemetry.registry().expect("tracing enables telemetry");
            let state = Introspection::new(
                Arc::clone(registry),
                Arc::clone(flight),
                Arc::clone(warning_log),
            );
            let s = HttpServer::start(addr, state)
                .map_err(|e| format!("cannot bind introspection server on {addr}: {e}"))?;
            println!(
                "introspection server on http://{}/ (/healthz /metrics /warnings /nodes/<id>/flight)",
                s.addr()
            );
            Some(s)
        }
        None => None,
    };

    let mut warnings = Vec::new();
    let stream_span = telemetry.span("stream");
    for (i, r) in records.iter().enumerate() {
        if let Some(w) = detector.ingest(r) {
            println!("[{}] {}", w.at.as_clock(), OnlineDetector::format_warning(&w));
            if let Some(sink) = sink.as_mut() {
                sink.event(
                    "warning",
                    &[
                        ("node", w.node.to_string().into()),
                        ("at_us", JsonValue::U64(w.at.0)),
                        ("predicted_lead_secs", w.predicted_lead_secs.into()),
                        ("score", w.score.into()),
                        ("class", w.class.name().into()),
                    ],
                )
                .map_err(|e| e.to_string())?;
                // A warning is the line an operator greps for after a crash;
                // it must not sit in a buffer if the process dies next.
                sink.flush().map_err(|e| e.to_string())?;
            }
            if let (Some(f), Some((_, warning_log))) = (warn_file.as_mut(), &trace) {
                if let Some(rec) = warning_log.snapshot().last() {
                    writeln!(f, "{}", rec.to_json()).map_err(|e| e.to_string())?;
                    f.flush().map_err(|e| e.to_string())?;
                }
            }
            warnings.push(w);
        }
        if (i + 1) % SNAPSHOT_EVERY == 0 {
            if let (Some(sink), Some(snap)) = (sink.as_mut(), telemetry.snapshot()) {
                sink.snapshot(&format!("progress@{}", i + 1), &snap)
                    .map_err(|e| e.to_string())?;
            }
        }
    }
    drop(stream_span);
    println!("\n{} warnings over {} anomaly events", warnings.len(), detector.events_seen());

    if let Some(truth_path) = opts.get("truth") {
        let truth =
            desh::loggen::io::read_truth_file(Path::new(truth_path)).map_err(|e| e.to_string())?;
        let mut caught = 0usize;
        for f in &truth {
            if warnings.iter().any(|w| {
                w.node == f.node && w.at < f.time && f.time.saturating_sub(w.at).as_mins_f64() < 10.0
            }) {
                caught += 1;
            }
        }
        println!(
            "scored against ground truth: {caught}/{} failures warned ahead of time",
            truth.len()
        );
    }
    if let (Some(dir), Some((flight, _))) = (&trace_dir, &trace) {
        let path = dir.join("flight.jsonl");
        std::fs::write(&path, flight.dump_all_jsonl()).map_err(|e| e.to_string())?;
        println!(
            "trace dir {}: warnings.jsonl ({} warnings), flight.jsonl ({} nodes)",
            dir.display(),
            warnings.len(),
            flight.node_names().len()
        );
    }
    finish_telemetry(&telemetry, sink.as_mut(), "final")?;
    if let Some(server) = server.as_mut() {
        match serve_secs {
            Some(secs) => {
                println!("holding introspection server for {secs}s...");
                std::thread::sleep(Duration::from_secs(secs));
                server.stop();
            }
            None => {
                println!("replay done; serving introspection until killed...");
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
        }
    }
    Ok(())
}

fn cmd_analyze(opts: &Flags) -> Result<(), String> {
    let log_path = PathBuf::from(need(opts, "log")?);
    let (records, bad) =
        desh::loggen::io::read_log_file(&log_path).map_err(|e| e.to_string())?;
    let parsed = parse_records(&records);
    println!(
        "{} records ({} corrupt), {} templates, {} nodes",
        records.len(),
        bad.len(),
        parsed.vocab_size(),
        parsed.per_node.len()
    );
    let chains = extract_chains(&parsed, &EpisodeConfig::default());
    println!("failure chains: {}", chains.len());

    println!("\nbusiest nodes by anomaly count:");
    for a in desh::logparse::node_activity(&parsed).iter().take(5) {
        println!("  {:<12} {:>6} events, {:>5} anomalies", a.node.to_string(), a.events, a.anomalies);
    }
    let bursts = desh::logparse::find_bursts(&parsed, 4, Micros::from_secs(30));
    if !bursts.is_empty() {
        println!("\nmessage bursts (>=4 repeats within 30s):");
        for b in bursts.iter().take(5) {
            println!(
                "  {:<12} x{:<3} {}",
                b.node.to_string(),
                b.count,
                parsed.template(b.phrase)
            );
        }
    }
    println!("\nunknown phrases by contribution to failures:");
    for c in unknown_contributions(&parsed, &chains, 10).iter().take(12) {
        println!(
            "  {:>5.1}%  ({:>4}/{:<4})  {}",
            c.contribution_pct(),
            c.in_chain,
            c.total,
            c.template
        );
    }
    Ok(())
}
