//! Failure forecasting in operations: the workflow the paper motivates.
//!
//! Train Desh on a system's history, then walk the evaluation window and
//! show the proactive actions an operator could take: which node to drain,
//! how much time the warning leaves, and whether common recovery
//! mechanisms (job migration ~13-24s, node cloning ~90s — §4.6) fit
//! inside the predicted lead time.
//!
//! ```text
//! cargo run --release --example failure_forecast
//! ```

use desh::prelude::*;

fn main() {
    let mut profile = SystemProfile::m1();
    profile.nodes = 48;
    profile.failures = 60;
    let dataset = generate(&profile, 11);
    let (train, test) = dataset.split_by_time(0.3);

    println!("training on {} records...", train.records.len());
    let desh = Desh::new(DeshConfig::default(), 11);
    let trained = desh.train(&train);
    let report = desh.evaluate(&trained, &test);

    println!("\n=== forecast log ({} test episodes) ===\n", report.verdicts.len());
    let mut migratable = 0usize;
    let mut clonable = 0usize;
    let mut flagged = 0usize;
    for v in report.verdicts.iter().filter(|v| v.flagged) {
        flagged += 1;
        let lead = v.predicted_lead_secs.unwrap_or(0.0);
        // §4.6: process-level migration takes 13-24s; DINO node cloning 90s.
        let action = if lead >= 90.0 {
            clonable += 1;
            migratable += 1;
            "clone node + migrate jobs"
        } else if lead >= 24.0 {
            migratable += 1;
            "migrate jobs"
        } else {
            "quarantine only"
        };
        if flagged <= 12 {
            println!(
                "[{}] WARNING: in {:>5.1}s, node {:<12} is expected to fail -> {}{}",
                v.end.as_clock(),
                lead,
                v.node.to_string(),
                action,
                if v.is_failure { "" } else { "   (false alarm)" }
            );
        }
    }
    println!("  ... ({flagged} warnings in total)\n");

    println!("=== operational summary ===");
    println!("{}", report.confusion.summary_row(&report.system));
    println!(
        "warnings leaving time to migrate jobs (>=24s):   {migratable}/{flagged}"
    );
    println!(
        "warnings leaving time to clone the node (>=90s): {clonable}/{flagged}"
    );
    let saved = report
        .verdicts
        .iter()
        .filter(|v| v.flagged && v.is_failure && v.predicted_lead_secs.unwrap_or(0.0) >= 24.0)
        .count();
    println!(
        "failures where proactive recovery was possible:  {saved}/{}",
        report.verdicts.iter().filter(|v| v.is_failure).count()
    );
}
