//! Compare Desh against the DeepLog-style and n-gram baselines on the same
//! dataset — the capability gap of Table 10/11 made concrete.
//!
//! ```text
//! cargo run --release --example baseline_shootout
//! ```

use desh::prelude::*;

fn main() {
    let mut profile = SystemProfile::m3();
    profile.nodes = 48;
    profile.failures = 60;
    let dataset = generate(&profile, 17);
    let (train, test) = dataset.split_by_time(0.3);

    let desh = Desh::new(DeshConfig::default(), 17);
    let trained = desh.train(&train);
    let report = desh.evaluate(&trained, &test);
    let parsed_test = parse_records_with_vocab(&test.records, trained.parsed_train.vocab.clone());

    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let deeplog = DeepLog::train(&trained.parsed_train, DeepLogConfig::default(), &mut rng);
    let dl = deeplog.evaluate(&parsed_test, &test.failures, &desh.cfg.episodes);

    let ngram = NgramModel::train(&trained.parsed_train, NgramConfig::default());
    let ng = ngram.evaluate(&parsed_test, &test.failures, &desh.cfg.episodes);

    let severity = desh::baselines::SeverityDetector::default();
    let sv = severity.evaluate(&parsed_test, &test.failures, &desh.cfg.episodes);

    println!("=== node-failure prediction on {} ===\n", profile.name);
    println!("{}", report.confusion.summary_row("Desh        "));
    println!("{}", dl.summary_row("DeepLog-style"));
    println!("{}", ng.summary_row("N-gram      "));
    println!("{}", sv.summary_row("Severity-tag"));
    let sev_leads = severity.achievable_lead_secs(&parsed_test, &desh.cfg.episodes);
    let sev_mean = sev_leads.iter().sum::<f64>() / sev_leads.len().max(1) as f64;
    println!("  (severity tags could at best warn {sev_mean:.1}s ahead — Observation 6)");

    println!("\ncapabilities beyond detection:");
    println!(
        "  Desh          -> lead times (mean {:.1}s) + node location (e.g. {})",
        report.lead_overall.mean(),
        report
            .verdicts
            .iter()
            .find(|v| v.flagged)
            .map(|v| v.node.to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!("  DeepLog-style -> per-entry anomaly verdicts only (no lead time, no location)");
    println!("  N-gram        -> per-entry anomaly verdicts only (no long-term memory)");
    println!("  Severity-tag  -> fires on fatal messages, i.e. when the node is already dying");
}
