//! Deployment workflow: train offline, checkpoint the models to disk,
//! reload in a (simulated) inference service, verify identical behaviour.
//!
//! ```text
//! cargo run --release --example model_persistence
//! ```

use bytes_ext::write_read;
use desh::prelude::*;

mod bytes_ext {
    use std::io::{Read, Write};
    use std::path::Path;

    /// Write bytes to a file and read them back (stand-in for a model
    /// registry round trip).
    pub fn write_read(path: &Path, data: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(data)?;
        drop(f);
        let mut buf = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

fn main() -> std::io::Result<()> {
    let mut profile = SystemProfile::tiny();
    profile.failures = 24;
    profile.nodes = 16;
    let dataset = generate(&profile, 31);
    let (train, test) = dataset.split_by_time(0.3);

    println!("training...");
    let desh = Desh::new(DeshConfig::fast(), 31);
    let trained = desh.train(&train);

    // Checkpoint both models.
    let dir = std::env::temp_dir().join("desh-checkpoints");
    std::fs::create_dir_all(&dir)?;
    let token_path = dir.join("phase1_token.dshm");
    let lead_path = dir.join("phase2_lead.dshm");

    let token_bytes = trained.phase1.model.to_bytes();
    let lead_f32 = trained
        .lead_model
        .net
        .f32()
        .expect("training produces the f32 variant");
    let lead_bytes = lead_f32.to_bytes();
    println!(
        "checkpointing: phase-1 model {} KiB, phase-2 model {} KiB",
        token_bytes.len() / 1024,
        lead_bytes.len() / 1024
    );
    let token_back = write_read(&token_path, &token_bytes)?;
    let lead_back = write_read(&lead_path, &lead_bytes)?;

    // Reload and verify bit-identical behaviour.
    let token2 = TokenLstm::from_bytes(token_back.into()).expect("valid checkpoint");
    let lead2 = VectorLstm::from_bytes(lead_back.into()).expect("valid checkpoint");

    let ctx = [1u32, 3, 5, 2];
    assert_eq!(
        trained.phase1.model.predict_probs(&ctx),
        token2.predict_probs(&ctx),
        "phase-1 predictions must survive the round trip"
    );
    let window: Vec<Vec<f32>> = vec![trained.lead_model.vectorize(30.0, 2)];
    let w: Vec<&[f32]> = window.iter().map(|v| v.as_slice()).collect();
    assert_eq!(
        lead_f32.predict_next(&w, 5),
        lead2.predict_next(&w, 5),
        "phase-2 predictions must survive the round trip"
    );
    println!("reloaded checkpoints produce identical predictions ✓");

    // The reloaded lead model drives phase 3 like the original.
    let mut restored = trained.lead_model.clone();
    restored.net = ScoringNet::F32(lead2);
    let parsed_test = parse_records_with_vocab(&test.records, trained.parsed_train.vocab.clone());
    let out = desh::core::run_phase3(&restored, &parsed_test, &test.failures, &desh.cfg);
    println!("{}", out.confusion.summary_row("restored model"));

    std::fs::remove_file(token_path).ok();
    std::fs::remove_file(lead_path).ok();
    Ok(())
}
