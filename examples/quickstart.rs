//! Quickstart: generate a synthetic Cray log, run the three-phase Desh
//! pipeline, print the prediction report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use desh::prelude::*;

fn main() {
    // A small but realistic system: 32 nodes, 12 hours, 40 failures.
    let mut profile = SystemProfile::m3();
    profile.nodes = 32;
    profile.failures = 40;
    println!("generating dataset for {} ({} nodes)...", profile.name, profile.nodes);
    let dataset = generate(&profile, 7);
    println!(
        "  {} records, {} injected failures over {:.0}h",
        dataset.records.len(),
        dataset.failures.len(),
        dataset.duration.as_secs_f64() / 3600.0
    );

    println!("training Desh (phases 1+2 on the first 30% of the timeline)...");
    let desh = Desh::new(DeshConfig::default(), 7);
    let report = desh.run(&dataset);

    println!("\n=== report for {} ===", report.system);
    println!("{}", report.confusion.summary_row(&report.system));
    println!(
        "phase-1 3-step accuracy: {:.1}%  |  chains trained: {}",
        report.phase1_accuracy * 100.0,
        report.chains_trained
    );
    println!(
        "mean lead time: {:.1}s over {} correctly predicted failures",
        report.lead_overall.mean(),
        report.lead_overall.count()
    );
    println!("\nlead time by failure class:");
    for (class, s) in &report.lead_by_class {
        println!("  {:<11} {:.1}s (n={})", class.name(), s.mean(), s.count());
    }

    // The warnings a deployment would act on.
    println!("\nsample warnings:");
    for v in report.verdicts.iter().filter(|v| v.flagged).take(5) {
        println!(
            "  node {:<12} expected to fail in {:>6.1}s  (score {:.3}{})",
            v.node.to_string(),
            v.predicted_lead_secs.unwrap_or(0.0),
            v.score,
            if v.is_failure { ", did fail" } else { ", false alarm" }
        );
    }
}
