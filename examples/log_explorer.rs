//! Log mining without the model: the §3.1/§4.3 data-science workflow.
//!
//! Starts from *raw text lines* (exactly what a production syslog feed
//! looks like), mines templates, labels them, extracts failure chains,
//! and runs the unknown-phrase contribution analysis.
//!
//! ```text
//! cargo run --release --example log_explorer
//! ```

use desh::prelude::*;

fn main() {
    // Pretend we received a raw log file: render everything to text first.
    let dataset = generate(&SystemProfile::m4(), 23);
    let mut lines = dataset.raw_lines();
    // Real feeds contain garbage; prove the parser tolerates it.
    lines.insert(100, "##### corrupted line: parity error in transit #####".into());

    let (parsed, bad) = parse_lines(&lines);
    println!("parsed {} lines ({} rejected as corrupt)", lines.len() - bad.len(), bad.len());
    println!(
        "vocabulary: {} templates over {} events on {} nodes",
        parsed.vocab_size(),
        parsed.event_count(),
        parsed.per_node.len()
    );

    // Label census.
    let mut census = [0usize; 3];
    for id in 0..parsed.vocab_size() as u32 {
        match parsed.label(id) {
            Label::Safe => census[0] += 1,
            Label::Unknown => census[1] += 1,
            Label::Error => census[2] += 1,
        }
    }
    println!(
        "labels: {} safe, {} unknown, {} error templates",
        census[0], census[1], census[2]
    );

    // Failure chains straight from the data (no training needed).
    let chains = extract_chains(&parsed, &EpisodeConfig::default());
    println!("\nfailure chains found: {}", chains.len());
    if let Some(c) = chains.first() {
        println!("first chain (node {}, lead {:.1}s):", c.node, c.lead_secs());
        for e in &c.events {
            println!("  dT={:>7.2}s  {}", e.delta_t, parsed.template(e.phrase));
        }
    }

    // Unknown-phrase analysis (Table 8 / Figure 9).
    println!("\nunknown phrases ranked by contribution to failures:");
    for c in unknown_contributions(&parsed, &chains, 20).iter().take(10) {
        println!(
            "  {:>5.1}%  ({:>4} of {:>4})  {}",
            c.contribution_pct(),
            c.in_chain,
            c.total,
            c.template
        );
    }

    // Word embeddings make semantically related phrases neighbours (§3.1).
    let seqs: Vec<Vec<u32>> = parsed.node_sequences().into_iter().map(|(_, s)| s).collect();
    let mut rng = Xoshiro256pp::seed_from_u64(23);
    let cfg = desh::nn::SgnsConfig { dim: 16, epochs: 2, ..Default::default() };
    let mut sg = SkipGram::new(parsed.vocab_size(), &seqs, cfg, &mut rng);
    sg.train(&seqs, &mut rng);
    if let Some(lustre_id) = (0..parsed.vocab_size() as u32)
        .find(|&id| parsed.template(id).starts_with("LustreError"))
    {
        let table = sg.into_table();
        let emb = desh::nn::Embedding::from_table(table);
        println!("\nnearest neighbours of \"LustreError\" in embedding space:");
        for (id, sim) in emb.nearest(lustre_id, 4) {
            println!("  {sim:+.3}  {}", parsed.template(id));
        }
    }
}
