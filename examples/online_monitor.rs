//! Online monitoring: stream raw log lines through the trained detector
//! in arrival order, exactly as a deployment sitting on the syslog feed
//! would, and print the paper-style warnings as they fire.
//!
//! ```text
//! cargo run --release --example online_monitor
//! ```

use desh::core::OnlineDetector;
use desh::prelude::*;

fn main() {
    let mut profile = SystemProfile::m3();
    profile.nodes = 32;
    profile.failures = 40;
    let dataset = generate(&profile, 19);
    let (train, test) = dataset.split_by_time(0.3);

    println!("training on the first 30% of the timeline...");
    let desh = Desh::new(DeshConfig::default(), 19);
    let trained = desh.train(&train);

    let mut detector = OnlineDetector::new(
        trained.lead_model.clone(),
        trained.parsed_train.vocab.clone(),
        desh.cfg.clone(),
    );

    println!(
        "streaming {} raw lines through the detector...\n",
        test.records.len()
    );
    let mut warnings = Vec::new();
    for record in &test.records {
        // A deployment would read lines from the wire; we re-render and
        // re-parse to prove the text path works end to end.
        let line = record.to_raw_line();
        if let Ok(Some(w)) = detector.ingest_line(&line) {
            if warnings.len() < 10 {
                println!("[{}] {}", w.at.as_clock(), OnlineDetector::format_warning(&w));
            }
            warnings.push(w);
        }
    }
    if warnings.len() > 10 {
        println!("... ({} warnings in total)", warnings.len());
    }

    // Score the warnings against ground truth.
    let mut true_warnings = 0usize;
    let mut caught = 0usize;
    for f in &test.failures {
        if warnings
            .iter()
            .any(|w| w.node == f.node && w.at < f.time && f.time.saturating_sub(w.at).as_mins_f64() < 10.0)
        {
            caught += 1;
        }
    }
    for w in &warnings {
        if test
            .failures
            .iter()
            .any(|f| f.node == w.node && w.at < f.time && f.time.saturating_sub(w.at).as_mins_f64() < 10.0)
        {
            true_warnings += 1;
        }
    }
    println!("\n=== online summary ===");
    println!(
        "failures warned ahead of time: {caught}/{} ({:.0}%)",
        test.failures.len(),
        100.0 * caught as f64 / test.failures.len().max(1) as f64
    );
    println!(
        "warnings that were real:       {true_warnings}/{} ({:.0}%)",
        warnings.len(),
        100.0 * true_warnings as f64 / warnings.len().max(1) as f64
    );
    let mean_lead: f64 = warnings
        .iter()
        .map(|w| w.predicted_lead_secs)
        .sum::<f64>()
        / warnings.len().max(1) as f64;
    println!("mean predicted lead time:      {mean_lead:.1}s");
}
