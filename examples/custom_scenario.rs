//! Extending Desh to a new failure mode: define a custom fault cascade at
//! runtime (here: a fictional GPU Xid-style cascade), synthesise a
//! dataset, and check that the pipeline learns to predict it.
//!
//! ```text
//! cargo run --release --example custom_scenario
//! ```

use desh::loggen::{synthesize, ScenarioBuilder};
use desh::prelude::*;

fn main() {
    // A cascade our built-in Table 7 catalog does not contain: corrected
    // PCIe errors escalate into kernel faults and kill the node.
    let gpu = ScenarioBuilder::new("gpu_xid")
        .step(Phrase::PcieCorrected, 0.95)
        .step(Phrase::AerMulti, 0.85)
        .step(Phrase::HwerrProto, 0.6)
        .step(Phrase::NullDeref, 0.85)
        .step(Phrase::CallTrace, 0.9)
        .terminal(Phrase::CbNodeUnavailable)
        .lead_secs(180.0, 20.0)
        .build();
    // A shorter OOM-driven cascade for contrast.
    let oom = ScenarioBuilder::new("oom_spiral")
        .step(Phrase::OomKilled, 0.95)
        .step(Phrase::NodeHealthExit, 0.8)
        .step(Phrase::PanicNotSyncing, 0.9)
        .step(Phrase::CallTrace, 0.9)
        .terminal(Phrase::CbNodeUnavailable)
        .lead_secs(70.0, 10.0)
        .build();

    println!("synthesising a dataset with two custom cascades...");
    let dataset = synthesize(
        &[(gpu, 0.6), (oom, 0.4)],
        24,
        Micros::from_hours(24),
        60,
        4.0,
        99,
    );
    println!(
        "  {} records, {} failures",
        dataset.records.len(),
        dataset.failures.len()
    );

    let desh = Desh::new(DeshConfig::default(), 99);
    let report = desh.run(&dataset);
    println!("\n{}", desh::core::render(&report));

    // The two cascades should be separable by their lead times.
    let leads: Vec<f64> = report
        .verdicts
        .iter()
        .filter(|v| v.is_failure && v.flagged)
        .filter_map(|v| v.predicted_lead_secs)
        .collect();
    let hist = desh::util::Histogram::of(&leads, 0.0, 240.0, 8);
    println!("lead-time distribution (two modes expected):\n{}", hist.render(40));
}
